"""Shared plumbing for the ``repro`` CLI subcommand modules.

Every subcommand family module (:mod:`repro.cli.figures`,
:mod:`repro.cli.serving`, ...) builds on the same pieces defined here:
the figure registry, the shared flag set added both to the root parser
and to each subcommand's ``add_help=False`` parent, the
experiment/store factories that honour those flags, and the per-stage
run-log emission on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict

from repro.harness import (
    ArtifactStore,
    default_cache_dir,
    default_experiment,
    figures,
    quick_experiment,
)

#: figure name -> callable(exp, engine) returning one or more Tables.
#: Only the direct-mapped sweep figures consume ``engine``.
FIGURES: Dict[str, Callable] = {
    "fig03": lambda exp, engine: [figures.fig03_execution_profile(exp)],
    "fig04": lambda exp, engine: [
        figures.fig04_table(
            figures.fig04_cache_sweep(exp, combo, engine=engine), combo
        )
        for combo in ("base", "all")
    ],
    "fig05": lambda exp, engine: [
        figures.fig05_relative(
            figures.fig04_cache_sweep(exp, "base", engine=engine),
            figures.fig04_cache_sweep(exp, "all", engine=engine),
        )
    ],
    "fig06": lambda exp, engine: [figures.fig06_associativity(exp)],
    "fig07": lambda exp, engine: [figures.fig07_ablation(exp)],
    "fig08": lambda exp, engine: list(figures.fig08_sequences(exp)),
    "fig12": lambda exp, engine: [
        figures.fig12_combined(exp, "base"),
        figures.fig12_combined(exp, "all"),
    ],
    "fig13": lambda exp, engine: [
        figures.fig13_interference(exp, "base"),
        figures.fig13_interference(exp, "all"),
    ],
    "fig14": lambda exp, engine: [figures.fig14_itlb_l2(exp)],
    "fig15": lambda exp, engine: [figures.fig15_exec_time(exp)],
    "packing": lambda exp, engine: [figures.text_packing(exp)],
}


def default_jobs() -> int:
    """Worker-count default: ``$REPRO_JOBS`` or serial."""
    return int(os.environ.get("REPRO_JOBS", "1") or "1")


def add_shared_flags(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """The flags every command understands, defined once.

    Added twice: to the root parser with real defaults, and to the
    ``add_help=False`` parent each subcommand inherits with SUPPRESS
    defaults -- so ``repro --jobs 4 figure ...`` and ``repro figure ...
    --jobs 4`` both work, and a flag omitted after the subcommand never
    clobbers one given before it.
    """

    def default(value):
        return argparse.SUPPRESS if suppress else value

    parser.add_argument(
        "--full", action="store_true", default=default(False),
        help="use the paper-scale experiment (slower; benchmark default)",
    )
    parser.add_argument(
        "--jobs", type=int, default=default(default_jobs()), metavar="N",
        help="worker processes for sweep fan-out (default $REPRO_JOBS or 1; "
        "-1 = one per CPU); output is bit-identical to serial",
    )
    parser.add_argument(
        "--cache-dir", default=default(None), metavar="PATH",
        help=f"artifact cache directory (default {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", default=default(False),
        help="disable the persistent artifact cache for this run",
    )
    parser.add_argument(
        "--quiet", action="store_true", default=default(False),
        help="suppress the per-stage run log on stderr",
    )
    parser.add_argument(
        "--trace", default=default(None), metavar="PATH",
        help="record observability spans to a JSONL trace file "
        "(view with 'report' or 'trace-export')",
    )


def store_from(args) -> ArtifactStore:
    """The artifact store selected by ``--cache-dir``."""
    return ArtifactStore(args.cache_dir or default_cache_dir())


def experiment_from(args):
    """The quick/full experiment configured by the shared flags."""
    exp = default_experiment() if args.full else quick_experiment()
    exp.jobs = args.jobs
    exp.attach_store(None if args.no_cache else store_from(args))
    # Commands without the flag (info, lint, ...) keep the measured
    # default; ``serve`` interprets the flag itself.
    if args.command not in ("serve",):
        exp.profile_source = getattr(args, "profile_source", "measured")
    return exp


def warm(exp) -> None:
    """Touch every expensive stage so the run log covers the whole
    pipeline (codegen, profile, trace) even when layouts are cached."""
    _ = exp.app
    _ = exp.kernel
    _ = exp.profile
    _ = exp.trace


def emit_runlog(exp, args) -> None:
    """Render the experiment's per-stage run log to stderr."""
    if args.quiet or not exp.runlog.records:
        return
    cache = "off" if exp.store is None else str(exp.store.root)
    sys.stderr.write(
        exp.runlog.render(
            header=f"run log: fingerprint={exp.fingerprint} "
            f"jobs={exp.jobs} cache={cache}"
        )
    )
