"""Scenario-family subcommands: the declarative ``scenarios`` matrix
(``list``/``run``/``report``) and the ``static-bench`` profile-source
comparison over its cells."""

from __future__ import annotations

import sys
from typing import Dict

from repro.staticpred import PROFILE_SOURCES

from repro.cli._common import store_from


def register(sub, shared) -> Dict:
    """Declare the scenario-family subparsers; returns handlers."""
    scenarios = sub.add_parser(
        "scenarios",
        help="declarative scenario matrix (workload x hierarchy x combo "
        "x drift x engine)",
        description="Run the paper's evaluation as data: list the "
        "scenario cells, execute the resumable matrix sweep, or "
        "re-render the cross-scenario report from a saved "
        "BENCH_scenarios.json.  See docs/SCENARIOS.md.",
    )
    scsub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    sc_list = scsub.add_parser(
        "list", help="show the matrix cells and their fingerprints",
        parents=[shared],
    )
    sc_run = scsub.add_parser(
        "run", help="run (or resume) the scenario matrix",
        parents=[shared],
    )
    for leaf in (sc_list, sc_run):
        leaf.add_argument(
            "--matrix", default=None, metavar="FILE",
            help="load scenarios from a .toml/.json matrix file instead "
            "of the built-in default matrix",
        )
        leaf.add_argument(
            "--select", action="extend", nargs="+", default=None,
            metavar="GLOB",
            help="only cells whose name matches GLOB (repeatable, takes "
            "several patterns; a pattern matching nothing is an error)",
        )
        leaf.add_argument(
            "--profile-source", choices=PROFILE_SOURCES, default=None,
            help="override every selected cell's profile source "
            "(default: each spec's own, normally 'measured')",
        )
    sc_run.add_argument(
        "--fresh", action="store_true",
        help="ignore previously completed cells and recompute everything",
    )
    sc_run.add_argument(
        "--no-verify", action="store_true",
        help="skip the repro.check gate on each cell's optimized layout",
    )
    sc_run.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the matrix as BENCH_scenarios.json under DIR "
        "(compare runs with 'bench-diff')",
    )
    sc_run.add_argument(
        "--report", default=None, metavar="PATH", dest="report_path",
        help="also write the cross-scenario Markdown report to PATH",
    )
    sc_run.add_argument(
        "--check", action="store_true",
        help="exit 1 unless every cell passes its gate and the OLTP/DSS "
        "sensitivity ordering holds",
    )
    sc_report = scsub.add_parser(
        "report",
        help="render the cross-scenario Markdown report from a saved "
        "BENCH_scenarios.json",
    )
    sc_report.add_argument(
        "results_dir", nargs="?", default="benchmarks/results",
        help="directory holding BENCH_scenarios.json "
        "(default benchmarks/results)",
    )
    sc_report.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )

    staticbench = sub.add_parser(
        "static-bench",
        help="measured vs static vs hybrid profile sources on the OLTP "
        "scenario cells (the staticpred recovery gate)",
        description="Simulate scenario cells with optimized layouts "
        "built from each profile source and compare the miss "
        "reductions.  The gate requires static-only layouts to recover "
        "at least half of the measured-profile reduction on the OLTP "
        "cells.  See docs/STATIC.md.",
        parents=[shared],
    )
    staticbench.add_argument(
        "--select", action="extend", nargs="+", default=None, metavar="GLOB",
        help="scenario cells to evaluate (default: the no-drift OLTP "
        "cells tpcb-i32 and tpcb-i64x2)",
    )
    staticbench.add_argument(
        "--check", action="store_true",
        help="exit 1 unless static-only layouts recover >= 50%% of the "
        "measured-profile miss reduction on the OLTP cells",
    )
    staticbench.add_argument(
        "--save-json", default=None, metavar="DIR",
        help="write the gate table as BENCH_staticpred.json under DIR "
        "(compare runs with 'bench-diff')",
    )
    return {"scenarios": _cmd_scenarios, "static-bench": _cmd_static_bench}


def _cmd_scenarios(args, out) -> int:
    import json as _json
    import pathlib

    from repro import scenarios as scn
    from repro.errors import ScenarioError

    if args.scenarios_command == "report":
        path = pathlib.Path(args.results_dir) / "BENCH_scenarios.json"
        if not path.is_file():
            sys.stderr.write(
                f"no {path} -- run 'repro scenarios run --save-json "
                f"{args.results_dir}' first\n"
            )
            return 2
        text = scn.render_scenarios_report(_json.loads(path.read_text()))
        if args.out:
            pathlib.Path(args.out).write_text(text)
            out.write(f"wrote {args.out}\n")
        else:
            out.write(text)
        return 0

    try:
        if args.matrix:
            specs = scn.load_specs(args.matrix)
        else:
            specs = scn.default_matrix(quick=not args.full)
        if args.select:
            specs = scn.select_specs(specs, args.select)
        if args.profile_source:
            import dataclasses

            specs = [
                dataclasses.replace(
                    s, profile_source=args.profile_source
                ).validate()
                for s in specs
            ]

        if args.scenarios_command == "list":
            from repro.harness.figures import Table

            table = Table(
                title="Scenario matrix cells",
                columns=["scenario", "workload", "hierarchy", "combo",
                         "drift", "engine", "scope", "source",
                         "fingerprint"],
                rows=[
                    [s.name, s.workload.family, s.hierarchy.label, s.combo,
                     s.drift, s.engine, s.scope, s.profile_source,
                     s.fingerprint()]
                    for s in specs
                ],
                notes=["source: " + (args.matrix or "built-in default matrix")],
            )
            out.write(table.render() + "\n")
            return 0

        store = None if args.no_cache else store_from(args)
        result = scn.run_matrix(
            specs,
            store=store,
            jobs=args.jobs,
            fresh=args.fresh,
            verify=not args.no_verify,
        )
    except ScenarioError as exc:
        sys.stderr.write(f"scenarios: {exc}\n")
        return 2
    out.write(result.render() + "\n")
    if args.save_json:
        from repro.harness import write_benchmark_json

        write_benchmark_json("scenarios", result.to_document(), args.save_json)
    if args.report_path:
        pathlib.Path(args.report_path).write_text(
            scn.render_scenarios_report(result.to_document())
        )
        out.write(f"wrote {args.report_path}\n")
    if args.check and not result.passes():
        sys.stderr.write(
            "scenarios check FAILED: "
            f"{len(result.failed)} failed cell(s), "
            f"gates {'ok' if all(c.gate_ok for c in result.cells) else 'VIOLATED'}, "
            f"ordering {'ok' if result.ordering_ok() else 'VIOLATED'}\n"
        )
        return 1
    return 0


def _cmd_static_bench(args, out) -> int:
    from repro import scenarios as scn
    from repro.errors import ScenarioError
    from repro.scenarios.staticbench import (
        DEFAULT_CELLS,
        GATE_MIN_RATIO,
        run_static_bench,
    )

    try:
        specs = scn.select_specs(
            scn.default_matrix(quick=not args.full),
            args.select or list(DEFAULT_CELLS),
        )
        result = run_static_bench(
            specs,
            store=None if args.no_cache else store_from(args),
            jobs=args.jobs,
        )
    except ScenarioError as exc:
        sys.stderr.write(f"static-bench: {exc}\n")
        return 2
    table = result.to_table()
    out.write(table.render() + "\n")
    if args.save_json:
        from repro.harness import write_benchmark_json

        write_benchmark_json("staticpred", table, args.save_json)
    if args.check and not result.passes():
        sys.stderr.write(
            f"static-bench check FAILED: mean OLTP static recovery ratio "
            f"{result.gate_ratio:.3f} (need >= {GATE_MIN_RATIO:g})\n"
        )
        return 1
    return 0
