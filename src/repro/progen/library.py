"""The application routine library: the synthetic "Oracle" code body.

Every logical engine operation has a routine spec here whose *protocol*
(traced child calls, branch bindings, loop counts) exactly matches what
`repro.db` emits, and whose *body* is generated warm code calibrated to
OLTP realism: small basic blocks, data-dependent two-sided branches,
shared utility helpers, inline and out-of-line error paths, and
per-table specialized access paths (the reason commercial DB engines
have such large instruction footprints).

The generated binary also contains cold filler routines interleaved
with the hot ones in link order, reproducing the paper's situation of
a ~27 MB image whose ~260 KB hot footprint is scattered through it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.progen.builder import CompiledProgram, build_binary
from repro.progen.dsl import (
    Call,
    CallSeq,
    ColdPath,
    If,
    Loop,
    Node,
    RoutineSpec,
    Straight,
    SubCall,
    Syscall,
)

#: Shared utility helpers (hash, copy, compare...): the hottest code in
#: any DB engine, called statically from everywhere.
HELPERS = (
    "h.hash", "h.memcmp", "h.memcpy", "h.crc", "h.bisect",
    "h.lru", "h.latch", "h.decode", "h.cmp_int", "h.spin",
)


@dataclass
class AppCodeConfig:
    """Knobs for the generated application binary."""

    #: (table name, has unique index) in TPC-B order.
    tables: Tuple[Tuple[str, bool], ...] = (
        ("account", True), ("teller", True), ("branch", True), ("history", False),
    )
    seed: int = 42
    #: Multiplies every body budget; calibrates the hot footprint.
    scale: float = 1.0
    #: Cold filler routines interleaved between hot routines.
    filler_routines: int = 400
    #: Total instructions across all filler routines.
    filler_instructions: int = 250_000


class CodeFactory:
    """Generates warm code bodies, factoring them into many small
    private functions.

    Commercial engines spread their hot footprint over thousands of
    small procedures; the factory reproduces that by carving chunks of
    each routine's budget into separate private-function specs
    (collected into ``collector``) reached through static calls.
    """

    def __init__(
        self,
        rng: random.Random,
        helpers: Optional[Sequence[str]] = HELPERS,
        collector: Optional[List[RoutineSpec]] = None,
        private_fraction: float = 0.6,
    ) -> None:
        self.rng = rng
        self.helpers = helpers
        self.collector = collector
        self.private_fraction = private_fraction
        self._counter = 0

    def run(self, budget: int, owner: str = "") -> List[Node]:
        """Generate ~``budget`` instructions for routine ``owner``,
        outlining roughly ``private_fraction`` of it into private
        functions."""
        if self.collector is None or not owner:
            return generate_code_run(self.rng, budget, self.helpers)
        nodes: List[Node] = []
        remaining = max(1, budget)
        while remaining > 0:
            if remaining > 90 and self.rng.random() < self.private_fraction:
                chunk = min(remaining, self.rng.randint(60, 200))
                name = f"{owner}.p{self._counter}"
                self._counter += 1
                self.collector.append(
                    RoutineSpec(
                        name=name,
                        body=generate_code_run(self.rng, chunk, self.helpers),
                        prologue=self.rng.randint(2, 4),
                        epilogue=2,
                    )
                )
                nodes.append(SubCall(name, size=self.rng.randint(2, 4)))
                remaining -= chunk
            else:
                chunk = min(remaining, self.rng.randint(25, 80))
                nodes.extend(generate_code_run(self.rng, chunk, self.helpers))
                remaining -= chunk
        return nodes


def generate_code_run(
    rng: random.Random,
    budget: int,
    helpers: Optional[Sequence[str]] = HELPERS,
    depth: int = 0,
) -> List[Node]:
    """Generate ~``budget`` static instructions of realistic warm code.

    The mix: straight-line blocks (3-9 instructions), two-sided and
    one-sided pseudo-random branches, helper calls, short constant
    loops, and cold error paths.
    """
    nodes: List[Node] = []
    spent = 0
    budget = max(1, budget)
    while spent < budget:
        roll = rng.random()
        if roll < 0.34 or depth >= 2:
            size = rng.randint(3, 9)
            nodes.append(Straight(size))
            spent += size
        elif roll < 0.52:
            # Warm two-sided branch; either arm may be the common one,
            # so an unprofiled layout guesses wrong about half the time.
            percent = rng.randint(25, 75)
            cmp_size = rng.randint(2, 4)
            then_budget = rng.randint(4, 12)
            else_budget = rng.randint(3, 10)
            nodes.append(
                If(
                    f"?{percent}",
                    then=generate_code_run(rng, then_budget, helpers, depth + 1),
                    orelse=generate_code_run(rng, else_budget, helpers, depth + 1),
                    size=cmp_size,
                )
            )
            spent += cmp_size + then_budget + else_budget + 1
        elif roll < 0.64:
            # Lukewarm skip-arm: the common path *takes* the branch
            # around it (the wrong-polarity pattern chaining fixes).
            percent = rng.randint(8, 30)
            cmp_size = rng.randint(2, 4)
            then_budget = rng.randint(6, 20)
            nodes.append(
                If(
                    f"?{percent}",
                    then=generate_code_run(rng, then_budget, helpers, depth + 1),
                    size=cmp_size,
                )
            )
            spent += cmp_size + then_budget
        elif roll < 0.68:
            # Rare arm: touched a handful of times per run -- the long
            # flat tail of the OLTP execution profile.
            percent = rng.randint(2, 7)
            cmp_size = rng.randint(2, 3)
            then_budget = rng.randint(10, 30)
            nodes.append(
                If(
                    f"?{percent}",
                    then=generate_code_run(rng, then_budget, helpers, depth + 1),
                    size=cmp_size,
                )
            )
            spent += cmp_size + then_budget
        elif roll < 0.74 and helpers:
            nodes.append(SubCall(rng.choice(list(helpers)), size=rng.randint(2, 5)))
            spent += 4
        elif roll < 0.92:
            # Dead error chunks fragment cache lines in the base layout
            # (mostly inline, as unprofiled compilers emit them);
            # chaining and splitting banish them.  This is the dominant
            # source of the paper's 46%-unused-fetched-words baseline.
            cold = rng.randint(10, 50)
            nodes.append(
                ColdPath(cold, blocks=rng.randint(1, 4), inline=rng.random() < 0.7)
            )
            spent += (cold + 2) // 2
        else:
            body_budget = rng.randint(6, 16)
            nodes.append(
                Loop(
                    rng.randint(1, 3),
                    body=generate_code_run(rng, body_budget, helpers, depth + 1),
                    size=3,
                )
            )
            spent += body_budget + 4
    return nodes


def _helper_specs(rng: random.Random, scale: float) -> List[RoutineSpec]:
    specs = []
    for name in HELPERS:
        budget = max(8, int(rng.randint(18, 40) * scale))
        specs.append(
            RoutineSpec(
                name=name,
                body=generate_code_run(rng, budget, helpers=None),
                prologue=2,
                epilogue=2,
            )
        )
    return specs


def _shared_specs(factory: CodeFactory, scale: float) -> List[RoutineSpec]:
    """Routines shared across tables (buffer pool, locks, WAL, txn)."""

    current_owner = [""]

    def run(budget: int) -> List[Node]:
        return factory.run(max(3, int(budget * scale)), owner=current_owner[0])

    def spec(name: str, body_fn) -> RoutineSpec:
        current_owner[0] = name
        return RoutineSpec(name, body=body_fn())

    specs = [
        spec("buffer_get", lambda: [
            *run(30),
            SubCall("h.hash"),
            *run(25),
            If("hit",
               then=[SubCall("h.lru"), *run(20)],
               orelse=[
                   *run(35),
                   Syscall("k.read"),
                   If("wrote_back", then=[Straight(4), Syscall("k.write")]),
                   *run(30),
               ]),
            ColdPath(int(60 * scale) + 6, blocks=4),
        ]),
        spec("buffer_new", lambda: [
            *run(35),
            If("wrote_back", then=[Straight(4), Syscall("k.write")]),
            *run(40),
            ColdPath(int(40 * scale) + 4, blocks=3),
        ]),
        spec("lock_acquire", lambda: [
            *run(30),
            SubCall("h.hash"),
            *run(30),
            If("deadlock", then=[*run(40)]),
            If("waited",
               then=[*run(15), Syscall("k.yield")],
               orelse=[*run(25)]),
            ColdPath(int(50 * scale) + 5, blocks=4),
        ]),
        spec("stmt_lookup", lambda: [
            *run(20),
            SubCall("h.hash"),
            *run(15),
            If("hit", then=[*run(10)], orelse=[Call("sql_parse")]),
        ]),
        spec("sql_parse", lambda: [
            *run(300),
            Loop("tokens", body=[*run(60), SubCall("h.memcmp")], size=4),
            *run(250),
            ColdPath(int(500 * scale) + 20, blocks=12),
        ]),
        spec("wal_append", lambda: [
            *run(30),
            Loop("chunks", body=[SubCall("h.memcpy"), *run(10)], size=3),
            *run(25),
            ColdPath(int(30 * scale) + 4, blocks=3),
        ]),
        spec("wal_flush", lambda: [
            *run(40),
            Loop("chunks", body=[SubCall("h.crc"), *run(8)], size=3),
            Syscall("k.write"),
            *run(35),
            ColdPath(int(40 * scale) + 5, blocks=3),
        ]),
        spec("txn_begin", lambda: [
            *run(60),
            SubCall("h.latch"),
            *run(50),
            ColdPath(int(40 * scale) + 5, blocks=3),
        ]),
        spec("txn_commit", lambda: [
            *run(50),
            If("flushed", then=[Call("wal_flush")]),
            Loop("nlocks", body=[*run(12)], size=3),
            *run(40),
            ColdPath(int(60 * scale) + 5, blocks=4),
        ]),
        spec("txn_abort", lambda: [
            *run(40),
            CallSeq(("buffer_get",)),
            Loop("nundo", body=[*run(15)], size=3),
            *run(30),
            ColdPath(int(50 * scale) + 5, blocks=4),
        ]),
    ]
    return specs


def _table_specs(
    factory: CodeFactory, rng: random.Random, table: str, indexed: bool, scale: float
) -> List[RoutineSpec]:
    """Specialized access-path routines for one table."""

    current_owner = [""]

    def run(budget: int) -> List[Node]:
        return factory.run(max(3, int(budget * scale)), owner=current_owner[0])

    def spec(base: str, body_fn) -> RoutineSpec:
        current_owner[0] = f"{base}@{table}"
        return RoutineSpec(
            name=f"{base}@{table}", body=body_fn(), suffix=table,
            prologue=rng.randint(3, 6), epilogue=rng.randint(2, 4),
        )

    specs = [
        spec("plan_bind", lambda: [
            *run(60),
            SubCall("h.hash"),
            *run(50),
            ColdPath(int(60 * scale) + 5, blocks=4),
        ]),
        spec("btree_lookup", lambda: [
            *run(25),
            Loop("depth", body=[Call("buffer_get"), SubCall("h.bisect"), *run(15)],
                 size=4),
            *run(15),
            If("found", then=[*run(10)], orelse=[*run(15)]),
            ColdPath(int(60 * scale) + 6, blocks=4),
        ]),
        spec("row_fetch", lambda: [
            *run(20),
            Call("buffer_get"),
            SubCall("h.memcpy"),
            *run(80),
            SubCall("h.decode"),
            *run(40),
            ColdPath(int(40 * scale) + 4, blocks=3),
        ]),
        spec("row_update", lambda: [
            *run(30),
            Call("buffer_get"),
            SubCall("h.memcpy"),
            *run(50),
            Call("wal_append"),
            *run(35),
            Call("buffer_get"),
            *run(25),
            ColdPath(int(50 * scale) + 5, blocks=4),
        ]),
        spec("sql_scan", lambda: [
            *run(60),
            Call("stmt_lookup"),
            *run(30),
            Call("plan_bind"),
            *run(40),
            CallSeq(("buffer_get",)),
            # The tight per-row aggregation loop: deliberately NOT
            # scaled -- DSS spends its time in a tiny code footprint,
            # which is exactly the contrast the paper draws with OLTP.
            Loop("rows", body=[Straight(6), SubCall("h.cmp_int"), Straight(4)],
                 size=3),
            *run(30),
            ColdPath(int(50 * scale) + 5, blocks=3),
        ]),
        spec("index_scan", lambda: [
            *run(50),
            Call("stmt_lookup"),
            *run(25),
            Call("plan_bind"),
            *run(35),
            CallSeq(("buffer_get",)),
            # Tight per-row loop, unscaled (see sql_scan).
            Loop("rows", body=[Straight(5), SubCall("h.cmp_int"), Straight(4)],
                 size=3),
            *run(25),
            ColdPath(int(40 * scale) + 5, blocks=3),
        ]),
        spec("heap_insert", lambda: [
            *run(35),
            CallSeq(("buffer_get", "buffer_new")),
            *run(30),
            ColdPath(int(40 * scale) + 4, blocks=3),
        ]),
        spec("sql_select", lambda: [
            *run(90),
            Call("stmt_lookup"),
            *run(40),
            Call("plan_bind"),
            *run(60),
            Call("lock_acquire"),
            If("!waited", then=[
                *run(50),
                Call("btree_lookup"),
                If("ok", then=[Call("row_fetch"), *run(70)], orelse=[*run(25)]),
            ]),
            *run(40),
            ColdPath(int(120 * scale) + 10, blocks=6),
        ]),
        spec("sql_update", lambda: [
            *run(110),
            Call("stmt_lookup"),
            *run(50),
            Call("plan_bind"),
            *run(70),
            Call("lock_acquire"),
            If("!waited", then=[
                *run(60),
                Call("btree_lookup"),
                If("ok", then=[
                    Call("row_fetch"),
                    *run(120),
                    Call("row_update"),
                    *run(60),
                ], orelse=[*run(30)]),
            ]),
            *run(50),
            ColdPath(int(160 * scale) + 12, blocks=8),
        ]),
    ]
    current_owner[0] = f"sql_insert@{table}"
    insert_body: List[Node] = [
        *run(90),
        Call("stmt_lookup"),
        *run(45),
        Call("plan_bind"),
        *run(60),
        Call("heap_insert"),
    ]
    if indexed:
        insert_body += [*run(40), Call("index_insert")]
    insert_body += [
        If("ok", then=[
            *run(40),
            Call("wal_append"),
            *run(30),
            Call("buffer_get"),
            *run(30),
        ]),
        *run(35),
        ColdPath(int(130 * scale) + 10, blocks=6),
    ]
    specs.append(spec("sql_insert", lambda: insert_body))
    if indexed:
        specs.append(spec("index_insert", lambda: [
            *run(40),
            CallSeq(("buffer_get", "buffer_new")),
            *run(35),
            ColdPath(int(60 * scale) + 6, blocks=4),
        ]))
    return specs


def _filler_specs(rng: random.Random, config: AppCodeConfig) -> List[RoutineSpec]:
    """Cold routines that pad the static image (never executed)."""
    if config.filler_routines <= 0:
        return []
    per_routine = max(10, config.filler_instructions // config.filler_routines)
    specs = []
    for i in range(config.filler_routines):
        budget = max(10, int(rng.gauss(per_routine, per_routine * 0.4)))
        body: List[Node] = []
        remaining = budget
        while remaining > 0:
            size = min(remaining, rng.randint(20, 60))
            body.append(Straight(size))
            remaining -= size
            if remaining > 10 and rng.random() < 0.3:
                cold = min(remaining, rng.randint(10, 40))
                body.append(ColdPath(cold, blocks=2))
                remaining -= cold
        specs.append(RoutineSpec(name=f"cold_{i:05d}", body=body))
    return specs


def build_app_program(config: Optional[AppCodeConfig] = None) -> CompiledProgram:
    """Build the application binary: hot routines scattered among filler.

    Link order interleaves shuffled hot routines with cold filler, the
    situation profile-driven layout exists to fix.
    """
    config = config or AppCodeConfig()
    rng = random.Random(config.seed)
    privates: List[RoutineSpec] = []
    factory = CodeFactory(rng, HELPERS, collector=privates)
    protocol: List[RoutineSpec] = []
    protocol.extend(_shared_specs(factory, config.scale))
    for table, indexed in config.tables:
        protocol.extend(_table_specs(factory, rng, table, indexed, config.scale))

    # Group each routine with its outlined private functions (one
    # "source module" per routine), as real compilation units do.
    groups: List[List[RoutineSpec]] = [[s] for s in _helper_specs(rng, config.scale)]
    for spec in protocol:
        prefix = spec.name + ".p"
        groups.append([spec] + [p for p in privates if p.name.startswith(prefix)])
    filler = _filler_specs(rng, config)

    order_rng = random.Random(config.seed ^ 0x5EED)
    order_rng.shuffle(groups)
    specs: List[RoutineSpec] = []
    filler_iter = iter(filler)
    per_group = max(1, len(filler) // max(1, len(groups)))
    for group in groups:
        specs.extend(group)
        for _ in range(per_group):
            nxt = next(filler_iter, None)
            if nxt is not None:
                specs.append(nxt)
    specs.extend(filler_iter)
    return build_binary(specs, name="oracle.sim")
