"""Footprint calibration: solve the code-generation scale for a target.

The paper's Oracle binary shows a ~260 KB dynamic instruction footprint
(Figure 3).  The generated binary's footprint is controlled by
``AppCodeConfig.scale``; this utility measures the *potential* warm
footprint of a candidate scale (total size of the non-cold code in
protocol routines, which is what a long-enough run touches) and
searches for the scale hitting a byte target.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from repro.ir import INSTRUCTION_BYTES
from repro.progen.builder import CompiledProgram
from repro.progen.library import AppCodeConfig, build_app_program


@dataclass
class CalibrationResult:
    """Outcome of a footprint calibration search."""

    scale: float
    warm_bytes: int
    target_bytes: int
    iterations: int

    @property
    def relative_error(self) -> float:
        return abs(self.warm_bytes - self.target_bytes) / self.target_bytes


def warm_footprint_bytes(program: CompiledProgram) -> int:
    """Upper bound on the dynamic footprint: every block of every
    non-filler routine except dead cold-path bodies.

    Cold-path bodies are identified structurally: blocks reachable only
    through a ColdPath guard's taken edge never execute.
    """
    from repro.progen.dsl import ColdPath
    from repro.progen.builder import iter_nodes

    total = 0
    for name, spec in program.specs.items():
        if name.startswith(("cold_", "kcold_")):
            continue
        proc = program.binary.proc(name)
        proc_total = sum(b.size for b in proc.blocks)
        cold = sum(
            node.size + 2 for node in iter_nodes(spec.body)
            if isinstance(node, ColdPath)
        )
        total += max(0, proc_total - cold)
    return total * INSTRUCTION_BYTES


def calibrate_scale(
    target_bytes: int,
    base_config: AppCodeConfig = None,
    tolerance: float = 0.05,
    max_iterations: int = 12,
) -> Tuple[AppCodeConfig, CalibrationResult]:
    """Search for the scale whose warm footprint hits ``target_bytes``.

    Uses proportional iteration (footprint is close to linear in scale);
    converges in a handful of builds.
    """
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    config = base_config or AppCodeConfig()
    scale = max(0.1, config.scale)
    best = None
    for iteration in range(1, max_iterations + 1):
        candidate = replace(config, scale=scale)
        program = build_app_program(candidate)
        warm = warm_footprint_bytes(program)
        result = CalibrationResult(
            scale=scale, warm_bytes=warm, target_bytes=target_bytes,
            iterations=iteration,
        )
        if best is None or result.relative_error < best[1].relative_error:
            best = (candidate, result)
        if result.relative_error <= tolerance:
            return candidate, result
        # Proportional correction with damping to avoid oscillation.
        ratio = target_bytes / max(1, warm)
        scale = max(0.1, scale * (0.5 + 0.5 * ratio))
    return best
