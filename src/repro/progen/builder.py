"""Compile routine specs (DSL) into a binary IR.

The compiled binary's *source order* is what a non-profile-guided
compiler would emit: prologue, body in source order with error handling
either inline or banked at the routine's end, epilogue.  The same DSL
tree, annotated with the compiled block ids, is what the CFG
interpreter walks at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir import Binary, Procedure, Terminator
from repro.progen.dsl import (
    Call,
    CallSeq,
    ColdPath,
    If,
    Loop,
    Node,
    RoutineSpec,
    Straight,
    SubCall,
    Syscall,
)


def iter_nodes(body: Sequence[Node]) -> Iterator[Node]:
    """Depth-first iteration over a DSL body."""
    for node in body:
        yield node
        if isinstance(node, If):
            yield from iter_nodes(node.then)
            yield from iter_nodes(node.orelse)
        elif isinstance(node, Loop):
            yield from iter_nodes(node.body)


@dataclass
class CompiledProgram:
    """A binary plus the bid-annotated specs that drive interpretation."""

    binary: Binary
    specs: Dict[str, RoutineSpec]

    def spec(self, name: str) -> RoutineSpec:
        try:
            return self.specs[name]
        except KeyError:
            raise IRError(f"no routine spec named {name!r}") from None

    def resolve(self, event_name: str, table: Optional[str]) -> str:
        """Resolve an event to its (possibly specialized) routine name."""
        if table:
            specialized = f"{event_name}@{table}"
            if specialized in self.specs:
                return specialized
        if event_name in self.specs:
            return event_name
        raise IRError(f"no routine for event {event_name!r} (table={table!r})")


class _RoutineCompiler:
    """Compiles one RoutineSpec into a Procedure."""

    def __init__(self, spec: RoutineSpec, known_names: frozenset) -> None:
        self.spec = spec
        self.known = known_names
        self.proc = Procedure(spec.name)
        self._counter = 0
        #: (node, attribute, label) fixups resolved after the binary is sealed.
        self.fixups: List[Tuple[object, str, str]] = []
        #: Deferred out-of-line cold chains: (entry_label, coldpath node).
        self._deferred_cold: List[Tuple[str, ColdPath]] = []
        self._epilogue_label = ""

    def _fresh(self) -> str:
        label = f"b{self._counter}"
        self._counter += 1
        return label

    def compile(self) -> Procedure:
        prologue = self._fresh()
        epilogue = self._fresh()
        self._epilogue_label = epilogue
        self.fixups.append((self.spec, "prologue_bid", prologue))
        self.fixups.append((self.spec, "epilogue_bid", epilogue))
        body_entry = self._plan_seq(self.spec.body, epilogue)
        self.proc.add_block(
            prologue, self.spec.prologue, Terminator.FALLTHROUGH, succs=(body_entry,)
        )
        self._emit_seq(self.spec.body, epilogue)
        self.proc.add_block(epilogue, self.spec.epilogue, Terminator.RETURN)
        for entry_label, node in self._deferred_cold:
            self._emit_cold_chain(entry_label, node)
        return self.proc

    # -- label planning ------------------------------------------------------

    def _plan_seq(self, nodes: Sequence[Node], exit_label: str) -> str:
        """Assign entry labels to a node sequence; returns its entry."""
        labels = [self._fresh() for _ in nodes]
        for node, label in zip(nodes, labels):
            node._entry_label = label  # transient, used by _emit_seq
        return labels[0] if labels else exit_label

    # -- emission ---------------------------------------------------------------

    def _emit_seq(self, nodes: Sequence[Node], exit_label: str) -> None:
        for i, node in enumerate(nodes):
            nxt = nodes[i + 1]._entry_label if i + 1 < len(nodes) else exit_label
            self._emit_node(node, node._entry_label, nxt)

    def _emit_node(self, node: Node, entry: str, nxt: str) -> None:
        if isinstance(node, Straight):
            self.fixups.append((node, "bid", entry))
            self.proc.add_block(entry, node.size, Terminator.FALLTHROUGH, succs=(nxt,))
        elif isinstance(node, If):
            self._emit_if(node, entry, nxt)
        elif isinstance(node, Loop):
            self._emit_loop(node, entry, nxt)
        elif isinstance(node, Call):
            self.fixups.append((node, "bid", entry))
            target = self._resolve_call(node)
            self.proc.add_block(
                entry, node.size, Terminator.CALL, succs=(nxt,), call_target=target
            )
        elif isinstance(node, Syscall):
            self.fixups.append((node, "bid", entry))
            self.proc.add_block(entry, node.size, Terminator.FALLTHROUGH, succs=(nxt,))
        elif isinstance(node, SubCall):
            self.fixups.append((node, "bid", entry))
            target = self._resolve_subcall(node)
            self.proc.add_block(
                entry, node.size, Terminator.CALL, succs=(nxt,), call_target=target
            )
        elif isinstance(node, CallSeq):
            self._emit_callseq(node, entry, nxt)
        elif isinstance(node, ColdPath):
            self._emit_coldpath(node, entry, nxt)
        else:
            raise IRError(f"unknown DSL node type: {type(node).__name__}")

    def _resolve_call(self, node: Call) -> str:
        if node.target:
            return node.target
        if self.spec.suffix:
            specialized = f"{node.match}@{self.spec.suffix}"
            if specialized in self.known:
                node.target = specialized
                return specialized
        if node.match in self.known:
            node.target = node.match
            return node.match
        raise IRError(
            f"routine {self.spec.name!r}: call target {node.match!r} "
            f"is not a known routine"
        )

    def _resolve_subcall(self, node: SubCall) -> str:
        if self.spec.suffix:
            specialized = f"{node.target}@{self.spec.suffix}"
            if specialized in self.known:
                node.target = specialized
                return specialized
        if node.target in self.known:
            return node.target
        raise IRError(
            f"routine {self.spec.name!r}: helper {node.target!r} "
            f"is not a known routine"
        )

    def _emit_callseq(self, node: CallSeq, entry: str, nxt: str) -> None:
        if not node.matches:
            raise IRError(f"routine {self.spec.name!r}: CallSeq needs matches")
        self.fixups.append((node, "bid", entry))
        k = len(node.matches)
        latch = self._fresh()
        dispatch_labels = [self._fresh() for _ in range(k - 1)]
        call_labels = [self._fresh() for _ in range(k)]
        body_entry = dispatch_labels[0] if k > 1 else call_labels[0]
        self.proc.add_block(
            entry, node.header_size, Terminator.COND_BRANCH,
            succs=(nxt, body_entry),
        )
        # Dispatch chain: cmp_i falls through to call_i, branches on to
        # the next cmp (or the last call).
        for i, label in enumerate(dispatch_labels):
            escape = dispatch_labels[i + 1] if i + 1 < k - 1 else call_labels[k - 1]
            self.proc.add_block(
                label, node.dispatch_size, Terminator.COND_BRANCH,
                succs=(escape, call_labels[i]),
            )
            if i < k - 1:
                target = self._resolve_match(node.matches[i])
                self.proc.add_block(
                    call_labels[i], node.call_size, Terminator.CALL,
                    succs=(latch,), call_target=target,
                )
        target = self._resolve_match(node.matches[k - 1])
        self.proc.add_block(
            call_labels[k - 1], node.call_size, Terminator.CALL,
            succs=(latch,), call_target=target,
        )
        self.proc.add_block(latch, 1, Terminator.UNCOND_BRANCH, succs=(entry,))
        self.fixups.append((node, "latch_bid", latch))
        for i, label in enumerate(dispatch_labels):
            self.fixups.append((node, f"_dispatch_{i}", label))
        for i, label in enumerate(call_labels):
            self.fixups.append((node, f"_call_{i}", label))

    def _resolve_match(self, match: str) -> str:
        if self.spec.suffix:
            specialized = f"{match}@{self.spec.suffix}"
            if specialized in self.known:
                return specialized
        if match in self.known:
            return match
        raise IRError(
            f"routine {self.spec.name!r}: call target {match!r} "
            f"is not a known routine"
        )

    def _emit_if(self, node: If, entry: str, nxt: str) -> None:
        self.fixups.append((node, "bid", entry))
        if node.orelse and not node.then:
            raise IRError(
                f"routine {self.spec.name!r}: If with else-arm needs a then-arm "
                f"(negate the condition instead)"
            )
        then_entry = self._plan_seq(node.then, nxt)
        if node.orelse:
            then_exit = self._fresh()
            else_entry = self._plan_seq(node.orelse, nxt)
            # cmp: fallthrough to then, branch taken to else.
            self.proc.add_block(
                entry, node.size, Terminator.COND_BRANCH,
                succs=(else_entry, then_entry),
            )
            self._emit_seq_with_exit(node.then, then_exit)
            self.fixups.append((node, "then_exit_bid", then_exit))
            self.proc.add_block(then_exit, 1, Terminator.UNCOND_BRANCH, succs=(nxt,))
            self._emit_seq(node.orelse, nxt)
        else:
            self.proc.add_block(
                entry, node.size, Terminator.COND_BRANCH,
                succs=(nxt, then_entry),
            )
            self._emit_seq(node.then, nxt)

    def _emit_seq_with_exit(self, nodes: Sequence[Node], exit_label: str) -> None:
        if nodes:
            self._emit_seq(nodes, exit_label)

    def _emit_loop(self, node: Loop, entry: str, nxt: str) -> None:
        self.fixups.append((node, "bid", entry))
        latch = self._fresh()
        body_entry = self._plan_seq(node.body, latch)
        # Header: taken exits the loop, fallthrough enters the body.
        self.proc.add_block(
            entry, node.size, Terminator.COND_BRANCH, succs=(nxt, body_entry)
        )
        self._emit_seq(node.body, latch)
        self.fixups.append((node, "latch_bid", latch))
        self.proc.add_block(latch, 1, Terminator.UNCOND_BRANCH, succs=(entry,))

    def _emit_coldpath(self, node: ColdPath, entry: str, nxt: str) -> None:
        self.fixups.append((node, "bid", entry))
        cold_entry = self._fresh()
        node._cold_entry_label = cold_entry
        if getattr(node, "inline", False):
            # Inline error code: the common case *takes* the branch
            # around it -- the layout badness chaining exists to fix.
            self.proc.add_block(
                entry, 2, Terminator.COND_BRANCH, succs=(nxt, cold_entry)
            )
            self._emit_cold_chain(cold_entry, node)
        else:
            # Out-of-line: branch to cold code banked after the
            # epilogue; common case falls through.
            self.proc.add_block(
                entry, 2, Terminator.COND_BRANCH, succs=(cold_entry, nxt)
            )
            self._deferred_cold.append((cold_entry, node))

    def _emit_cold_chain(self, entry: str, node: ColdPath) -> None:
        per_block = max(1, node.size // max(1, node.blocks))
        labels = [entry] + [self._fresh() for _ in range(node.blocks - 1)]
        for i, label in enumerate(labels):
            if i + 1 < len(labels):
                self.proc.add_block(
                    label, per_block, Terminator.FALLTHROUGH, succs=(labels[i + 1],)
                )
            else:
                self.proc.add_block(
                    label, per_block, Terminator.UNCOND_BRANCH,
                    succs=(self._epilogue_label,),
                )


def build_binary(specs: Sequence[RoutineSpec], name: str = "a.out") -> CompiledProgram:
    """Compile routine specs into a sealed binary (in spec/link order)."""
    by_name: Dict[str, RoutineSpec] = {}
    for spec in specs:
        if spec.name in by_name:
            raise IRError(f"duplicate routine spec {spec.name!r}")
        by_name[spec.name] = spec
    known = frozenset(by_name)
    binary = Binary(name)
    fixups: List[Tuple[object, str, str, Procedure]] = []
    for spec in specs:
        compiler = _RoutineCompiler(spec, known)
        proc = compiler.compile()
        binary.add_procedure(proc)
        for obj, attr, label in compiler.fixups:
            fixups.append((obj, attr, label, proc))
    binary.seal()
    for obj, attr, label, proc in fixups:
        setattr(obj, attr, proc.block(label).bid)
    return CompiledProgram(binary=binary, specs=by_name)
