"""Routine DSL: structured CFG descriptions of synthetic routines.

Each logical engine routine (``sql_update``, ``buffer_get``, ...) is
described as a tree of DSL nodes.  The builder compiles the tree into
IR basic blocks; the CFG interpreter later *walks the same tree* with
an event's semantic bindings (branch outcomes, loop trip counts) and
emits the executed block ids.

Nodes:

* :class:`Straight` -- ``size`` straight-line instructions.
* :class:`If` -- two-way branch on a binding; the *then* side is the
  fallthrough (the common-case arm should go there in hand-written
  specs; the optimizer will fix it anyway when profiles disagree).
* :class:`Loop` -- bottom-tested loop executing ``count`` times, where
  count is a binding name or a constant.
* :class:`Call` -- call to another traced routine; consumes the next
  child event, whose name must match.
* :class:`Syscall` -- kernel entry (``k.*`` child event); the kernel
  walker emits kernel-binary blocks, then control returns inline.
* :class:`ColdPath` -- a never-taken branch guarding dead code: the
  error-handling bulk that inflates real binaries (and that splitting
  exists to move out of the way).

Conditions are binding names; prefix ``!`` negates.  The reserved
condition ``never`` is constant-false (used by ColdPath).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.errors import IRError


class Node:
    """Base class for DSL nodes (compiled block ids filled by builder)."""

    __slots__ = ()


@dataclass
class Straight(Node):
    """``size`` straight-line instructions."""

    size: int
    bid: int = -1


@dataclass
class If(Node):
    """Two-way branch on a binding."""

    cond: str
    then: List[Node] = field(default_factory=list)
    orelse: List[Node] = field(default_factory=list)
    #: Instructions in the compare-and-branch block.
    size: int = 3
    bid: int = -1
    #: Block id of the unconditional jump block closing the then-arm
    #: (present only when the else-arm is non-empty).
    then_exit_bid: int = -1
    join_bid: int = -1


@dataclass
class Loop(Node):
    """Bottom-tested loop: body runs ``count`` times.

    ``count`` is a binding name (str) or a constant (int); ``minus``
    is subtracted and the result floored at zero.
    """

    count: Union[str, int]
    body: List[Node] = field(default_factory=list)
    minus: int = 0
    #: Instructions in the loop header (test + increment).
    size: int = 3
    bid: int = -1
    latch_bid: int = -1


@dataclass
class Call(Node):
    """Call to another traced routine (consumes one child event)."""

    match: str
    #: Instructions in the call-setup block (arg marshalling + call).
    size: int = 4
    #: Resolved static callee (set by the builder; may be a
    #: table-specialized variant of ``match``).
    target: str = ""
    bid: int = -1


@dataclass
class Syscall(Node):
    """Kernel entry: consumes one ``k.*`` child event."""

    match: str
    size: int = 6
    bid: int = -1


@dataclass
class SubCall(Node):
    """Static call to a helper routine with no trace event of its own.

    The callee is walked inline with the caller's bindings and no
    children; its spec must not contain Call/Syscall/CallSeq nodes.
    Shared utility helpers (hashing, memcpy flavors, comparators) are
    modeled this way.
    """

    target: str
    size: int = 3
    bid: int = -1


@dataclass
class CallSeq(Node):
    """Data-dependent repetition of traced calls.

    Consumes consecutive child events while their names are in
    ``matches``; compiles to a dispatch loop whose arms call each
    possible target.  Used where the engine's child sequence is
    data-dependent (B+tree insertion's mix of node loads, saves and
    splits).
    """

    matches: Tuple[str, ...]
    #: Instructions in the loop-test header / dispatch compare / call blocks.
    header_size: int = 3
    dispatch_size: int = 2
    call_size: int = 4
    bid: int = -1
    dispatch_bids: Tuple[int, ...] = ()
    call_bids: Tuple[int, ...] = ()
    latch_bid: int = -1


@dataclass
class ColdPath(Node):
    """Never-executed error-handling code behind a constant branch.

    ``inline=True`` places the dead code immediately after the guard
    (the executed path *takes* the branch around it); ``inline=False``
    banks it after the routine's epilogue (the executed path falls
    through).  Real unoptimized binaries contain both patterns.
    """

    size: int
    blocks: int = 3
    inline: bool = False
    bid: int = -1


@dataclass
class RoutineSpec:
    """One routine: name, entry/exit sizes, and a body of DSL nodes."""

    name: str
    body: List[Node]
    prologue: int = 4
    epilogue: int = 3
    #: Specialization suffix ("account", ...) used to resolve Call
    #: targets to specialized variants; empty for shared routines.
    suffix: str = ""
    prologue_bid: int = -1
    epilogue_bid: int = -1


def eval_cond(cond: str, bindings: dict, nonce: int = 0) -> bool:
    """Evaluate a DSL condition against an event's bindings.

    Conditions of the form ``?P`` (P in 0..100) are pseudo-random: true
    with probability ~P%, derived deterministically from the event's
    ``salt`` binding and the evaluating block's id (``nonce``).  They
    let generated warm code take data-dependent paths reproducibly.
    """
    negate = cond.startswith("!")
    name = cond[1:] if negate else cond
    if name.startswith("?"):
        percent = int(name[1:])
        salt = int(bindings.get("salt", 0))
        mixed = ((salt ^ (nonce * 0x9E3779B1)) * 0x85EBCA6B) & 0xFFFFFFFF
        value = (mixed % 100) < percent
    elif name == "never":
        value = False
    else:
        try:
            value = bool(bindings[name])
        except KeyError:
            raise IRError(
                f"condition {cond!r}: binding {name!r} missing from {bindings}"
            ) from None
    return (not value) if negate else value


def eval_count(count: Union[str, int], minus: int, bindings: dict) -> int:
    """Evaluate a loop trip count against an event's bindings."""
    if isinstance(count, int):
        value = count
    else:
        try:
            value = int(bindings[count])
        except KeyError:
            raise IRError(
                f"loop count {count!r} missing from bindings {bindings}"
            ) from None
    return max(0, value - minus)
