"""Synthetic program generation: DSL, compiler, routine libraries."""

from repro.progen.builder import CompiledProgram, build_binary, iter_nodes
from repro.progen.calibration import (
    CalibrationResult,
    calibrate_scale,
    warm_footprint_bytes,
)
from repro.progen.dsl import (
    Call,
    CallSeq,
    ColdPath,
    If,
    Loop,
    Node,
    RoutineSpec,
    Straight,
    SubCall,
    Syscall,
    eval_cond,
    eval_count,
)
from repro.progen.library import (
    AppCodeConfig,
    HELPERS,
    build_app_program,
    generate_code_run,
)

__all__ = [
    "AppCodeConfig",
    "CalibrationResult",
    "calibrate_scale",
    "warm_footprint_bytes",
    "Call",
    "CallSeq",
    "ColdPath",
    "CompiledProgram",
    "HELPERS",
    "If",
    "Loop",
    "Node",
    "RoutineSpec",
    "Straight",
    "SubCall",
    "Syscall",
    "build_app_program",
    "build_binary",
    "eval_cond",
    "eval_count",
    "generate_code_run",
    "iter_nodes",
]
