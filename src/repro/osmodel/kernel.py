"""The kernel binary: Tru64-style syscall/scheduler/interrupt paths.

Kernel routines use the same DSL/IR as the application but live in
their own binary, placed at :data:`KERNEL_BASE` in the address space.
Entry points are the ``k.*`` events emitted by the engine (I/O, lock
yields) and by the multiprocessor model (quantum expiry, timer ticks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.progen.builder import CompiledProgram, build_binary
from repro.progen.dsl import Loop, Node, RoutineSpec, Straight, SubCall
from repro.progen.library import generate_code_run

#: Base virtual address of the kernel image.  Note that instruction
#: caches index with low address bits, so kernel and application code
#: still collide in the cache -- the interference the paper measures.
KERNEL_BASE = 0x1000000

#: Kernel-internal helpers (statically called).
KERNEL_HELPERS = (
    "kh.copy", "kh.sched", "kh.vfs", "kh.blkio", "kh.intr", "kh.pmap",
)


@dataclass
class KernelCodeConfig:
    """Knobs for the generated kernel binary."""

    seed: int = 7
    scale: float = 1.0
    #: Cold kernel routines padding the image.
    filler_routines: int = 80
    filler_instructions: int = 40_000


def _helper_specs(rng: random.Random, scale: float) -> List[RoutineSpec]:
    specs = []
    for name in KERNEL_HELPERS:
        budget = max(10, int(rng.randint(30, 70) * scale))
        specs.append(
            RoutineSpec(
                name=name,
                body=generate_code_run(rng, budget, helpers=None),
                prologue=2,
                epilogue=2,
            )
        )
    return specs


def build_kernel_program(config: Optional[KernelCodeConfig] = None) -> CompiledProgram:
    """Build the kernel binary with every ``k.*`` entry point."""
    config = config or KernelCodeConfig()
    rng = random.Random(config.seed)

    def run(budget: int) -> List[Node]:
        return generate_code_run(rng, max(3, int(budget * scale)), helpers=KERNEL_HELPERS)

    scale = config.scale
    specs = _helper_specs(rng, scale)
    specs += [
        # Disk read syscall: trap, VFS, block layer, per-page copy-in.
        RoutineSpec("k.read", body=[
            *run(180),
            SubCall("kh.vfs"),
            *run(120),
            SubCall("kh.blkio"),
            Loop("pages", body=[SubCall("kh.copy"), *run(40)], size=4),
            *run(160),
        ]),
        # Disk/log write syscall.
        RoutineSpec("k.write", body=[
            *run(160),
            SubCall("kh.vfs"),
            *run(100),
            Loop("pages", body=[SubCall("kh.copy"), *run(35)], size=4),
            SubCall("kh.blkio"),
            *run(140),
        ]),
        # Voluntary yield (lock wait): scheduler + context switch.
        RoutineSpec("k.yield", body=[
            *run(140),
            SubCall("kh.sched"),
            *run(120),
            SubCall("kh.pmap"),
            *run(100),
        ]),
        # Involuntary context switch at quantum expiry.
        RoutineSpec("k.switch", body=[
            *run(120),
            SubCall("kh.intr"),
            *run(110),
            SubCall("kh.sched"),
            *run(130),
            SubCall("kh.pmap"),
            *run(90),
        ]),
        # Clock tick.
        RoutineSpec("k.timer", body=[
            *run(60),
            SubCall("kh.intr"),
            *run(70),
        ]),
    ]
    filler_rng = random.Random(config.seed ^ 0xBEEF)
    per_routine = max(
        10, config.filler_instructions // max(1, config.filler_routines)
    )
    for i in range(config.filler_routines):
        budget = max(10, int(filler_rng.gauss(per_routine, per_routine * 0.4)))
        body: List[Node] = []
        remaining = budget
        while remaining > 0:
            size = min(remaining, filler_rng.randint(20, 60))
            body.append(Straight(size))
            remaining -= size
        specs.append(RoutineSpec(name=f"kcold_{i:04d}", body=body))
    return build_binary(specs, name="vmunix.sim")
