"""Kernel model: the Tru64-style OS binary and its entry points."""

from repro.osmodel.kernel import (
    KERNEL_BASE,
    KERNEL_HELPERS,
    KernelCodeConfig,
    build_kernel_program,
)

__all__ = [
    "KERNEL_BASE",
    "KERNEL_HELPERS",
    "KernelCodeConfig",
    "build_kernel_program",
]
