"""repro.serve — the layout-optimization service.

The deployment story for the paper's optimizations: instead of every
node running Spike offline, a fleet of transaction-processing nodes
ships execution profiles to one service that optimizes, verifies, and
caches layouts for them.

* :mod:`repro.serve.protocol` — versioned messages over
  length-prefixed JSONL frames (TCP or unix sockets).
* :mod:`repro.serve.server` — asyncio server with admission control,
  single-flight request coalescing, a worker pool, and the
  ``repro.check`` swap gate on every outgoing layout.
* :mod:`repro.serve.cache` — two-tier layout cache (in-memory LRU
  over the persistent artifact store).
* :mod:`repro.serve.client` — resilient client: timeouts, backoff +
  jitter retries, a circuit breaker, last-known-good fallback.
* :mod:`repro.serve.fleet` — the simulated fleet driver and its
  acceptance gates (healthy and degraded scenarios).

Everything is observable through ``serve.*`` spans, counters, and
series in :mod:`repro.obs`; ``repro serve`` / ``repro fleet`` are the
CLI entry points.
"""

from repro.serve.cache import CacheStats, LayoutCache
from repro.serve.client import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ClientConfig,
    ClientStats,
    LayoutClient,
    SOURCE_FALLBACK,
)
from repro.serve.fleet import (
    EpochOutcome,
    FleetConfig,
    FleetReport,
    run_fleet,
)
from repro.serve.protocol import (
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    LayoutRequest,
    LayoutResponse,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProfileSubmit,
    SOURCE_BUILT,
    SOURCE_COALESCED,
    SOURCE_DISK,
    SOURCE_MEMORY,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    SubmitAck,
    encode_message,
    decode_body,
    read_message,
    read_message_sync,
)
from repro.serve.server import (
    LayoutServer,
    ServerConfig,
    ServerThread,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CacheStats",
    "CircuitBreaker",
    "ClientConfig",
    "ClientStats",
    "EpochOutcome",
    "ErrorResponse",
    "FleetConfig",
    "FleetReport",
    "HealthRequest",
    "HealthResponse",
    "LayoutCache",
    "LayoutClient",
    "LayoutRequest",
    "LayoutResponse",
    "LayoutServer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProfileSubmit",
    "SOURCE_BUILT",
    "SOURCE_COALESCED",
    "SOURCE_DISK",
    "SOURCE_FALLBACK",
    "SOURCE_MEMORY",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ServerConfig",
    "ServerThread",
    "SubmitAck",
    "decode_body",
    "encode_message",
    "read_message",
    "read_message_sync",
    "run_fleet",
]
