"""The simulated fleet: N client nodes driving one layout service.

Each fleet run cuts a phase-shifting workload's measurement trace into
epochs (:func:`repro.online.sampler.epoch_streams`), builds the exact
per-epoch profile, and has every client thread submit that profile and
request its optimized layout for the same epoch at the same time
(barrier-synchronized — the worst case for the server, the best case
for coalescing).  Applied layouts are measured by replaying the
epoch's fetch stream through :func:`repro.sim.simulate`, so the
report speaks the paper's language: misses per 1k instructions.

Two scenarios:

* **healthy** — the server stays up; the acceptance gate is that
  coalescing plus the layout cache bound actual optimizations to the
  number of distinct profiles, not the number of requests.
* **degraded** — the server is killed after ``kill_after`` epochs;
  clients must finish the remaining (drifted!) epochs on last-known-
  good layouts via the client fallback path, with no unhandled
  exceptions and a bounded, *reported* miss-rate decay.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.cache import CacheGeometry
from repro.check import check_layout
from repro.errors import ConfigError, ServeError
from repro.harness.store import layout_from_dict
from repro.ir import assign_addresses
from repro.layout import Combo, SpikeOptimizer
from repro.online.sampler import epoch_streams
from repro.profiles import PixieProfiler
from repro.serve.client import ClientConfig, LayoutClient, SOURCE_FALLBACK
from repro.serve.protocol import LayoutResponse
from repro.serve.server import ServerConfig, ServerThread
from repro.sim import MemoryHierarchy, simulate


@dataclass
class FleetConfig:
    """Shape of one simulated fleet run."""

    #: Concurrent client nodes.
    clients: int = 8
    #: Epochs the measurement trace is cut into (= distinct profiles;
    #: the phased workload makes successive epochs drift).
    epochs: int = 4
    #: Optimization combination every client requests.
    combo: str = "all"
    #: Kill the server after this many epochs (None = stay healthy).
    kill_after: Optional[int] = None
    #: Server admission-control limit (optimizations in flight).
    queue_limit: int = 8
    #: Server optimization workers (0 = in-process thread pool).
    workers: int = 0
    #: Client request policy (short timeouts keep degraded runs fast).
    timeout_s: float = 10.0
    max_attempts: int = 2
    backoff_s: float = 0.02
    breaker_threshold: int = 2
    breaker_cooldown_s: float = 30.0
    #: I-cache geometry epochs are measured against.
    cache_bytes: int = 16 * 1024
    line_bytes: int = 64
    associativity: int = 2

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError(f"fleet needs >= 1 client, got {self.clients}")
        if self.epochs < 1:
            raise ConfigError(f"fleet needs >= 1 epoch, got {self.epochs}")
        if self.kill_after is not None and not (
            0 < self.kill_after < self.epochs
        ):
            raise ConfigError(
                f"kill_after must be in 1..{self.epochs - 1}, "
                f"got {self.kill_after}"
            )

    @property
    def geometry(self) -> CacheGeometry:
        """The measurement I-cache geometry."""
        return CacheGeometry(
            self.cache_bytes, self.line_bytes, self.associativity
        )


@dataclass
class EpochOutcome:
    """What one epoch looked like across the fleet."""

    epoch: int
    degraded: bool
    instructions: int
    requests: int
    served: int
    fallbacks: int
    failures: int
    sources: Dict[str, int]
    #: MPKI of the layout the fleet actually ran.
    served_mpki: float
    #: MPKI of a fresh layout built from this epoch's exact profile.
    fresh_mpki: float
    gate_ok: bool

    @property
    def decay(self) -> float:
        """Served-layout miss rate relative to a fresh build (>= ~1)."""
        return self.served_mpki / max(self.fresh_mpki, 1e-12)


@dataclass
class FleetReport:
    """One fleet scenario, epoch by epoch, plus the server's counters."""

    config: FleetConfig
    epochs: List[EpochOutcome] = field(default_factory=list)
    #: serve.* counter deltas over the run (server + clients).
    counters: Dict[str, int] = field(default_factory=dict)
    queue_wait_p95_ms: float = 0.0
    #: Client-thread exceptions that escaped the resilience policy.
    unhandled_errors: List[str] = field(default_factory=list)

    # -- derived ----------------------------------------------------------

    @property
    def requests(self) -> int:
        """Layout requests issued across all clients and epochs."""
        return sum(e.requests for e in self.epochs)

    @property
    def optimizations(self) -> int:
        """Optimizations the server actually ran."""
        return self.counters.get("serve.optimizations", 0)

    @property
    def coalesced(self) -> int:
        """Requests answered by piggybacking on an in-flight build."""
        return self.counters.get("serve.coalesced", 0)

    @property
    def cache_hits(self) -> int:
        """Requests answered from the layout cache (both tiers)."""
        return self.counters.get(
            "serve.cache_hits", 0
        ) + self.counters.get("serve.cache_disk_hits", 0)

    @property
    def fallbacks(self) -> int:
        """Requests answered from client-side last-known-good layouts."""
        return sum(e.fallbacks for e in self.epochs)

    @property
    def healthy_epochs(self) -> List[EpochOutcome]:
        """Epochs served with the server up."""
        return [e for e in self.epochs if not e.degraded]

    @property
    def degraded_epochs(self) -> List[EpochOutcome]:
        """Epochs finished on fallback layouts."""
        return [e for e in self.epochs if e.degraded]

    @property
    def decay_ratio(self) -> float:
        """Worst degraded-epoch miss rate relative to a fresh build
        (1.0 when the run had no degraded epochs)."""
        degraded = self.degraded_epochs
        if not degraded:
            return 1.0
        return max(e.decay for e in degraded)

    def passes(self, max_decay: float = 3.0) -> bool:
        """The ISSUE acceptance gate for this scenario.

        Healthy epochs: every request served, every layout gated, and
        coalescing + caching bound server work to at most two builds
        per distinct profile (one would be perfect; two forgives a
        cache race) — far below one build per request.  Degraded
        epochs: no unhandled exceptions, every client finished on a
        fallback layout, and the decay stayed under ``max_decay``.
        """
        if self.unhandled_errors:
            return False
        healthy = self.healthy_epochs
        if healthy:
            if any(e.failures or not e.gate_ok for e in healthy):
                return False
            expected = self.config.clients * len(healthy)
            if sum(e.requests for e in healthy) < expected:
                return False
            if self.optimizations > min(2 * len(healthy), 8):
                return False
            saved = self.coalesced + self.cache_hits
            if saved < sum(e.requests for e in healthy) - self.optimizations:
                return False
        for epoch in self.degraded_epochs:
            if epoch.failures or not epoch.gate_ok:
                return False
            if epoch.fallbacks == 0:
                return False
        if self.degraded_epochs and not self.decay_ratio <= max_decay:
            return False
        return True

    def to_dict(self) -> Dict:
        """JSON-ready view (the ``--json`` CLI form)."""
        return {
            "config": {
                "clients": self.config.clients,
                "epochs": self.config.epochs,
                "combo": self.config.combo,
                "kill_after": self.config.kill_after,
                "queue_limit": self.config.queue_limit,
                "workers": self.config.workers,
            },
            "epochs": [
                {
                    "epoch": e.epoch,
                    "degraded": e.degraded,
                    "instructions": e.instructions,
                    "requests": e.requests,
                    "served": e.served,
                    "fallbacks": e.fallbacks,
                    "failures": e.failures,
                    "sources": dict(e.sources),
                    "served_mpki": round(e.served_mpki, 4),
                    "fresh_mpki": round(e.fresh_mpki, 4),
                    "decay": round(e.decay, 4),
                    "gate_ok": e.gate_ok,
                }
                for e in self.epochs
            ],
            "requests": self.requests,
            "optimizations": self.optimizations,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "fallbacks": self.fallbacks,
            "decay_ratio": round(self.decay_ratio, 4),
            "queue_wait_p95_ms": round(self.queue_wait_p95_ms, 3),
            "counters": dict(self.counters),
            "unhandled_errors": list(self.unhandled_errors),
            "passes": self.passes(),
        }

    def render(self) -> str:
        """The human-readable fleet table."""
        title = (
            f"fleet: {self.config.clients} clients x {self.config.epochs} "
            f"epochs, combo={self.config.combo}"
        )
        if self.config.kill_after is not None:
            title += f", server killed after epoch {self.config.kill_after}"
        lines = [
            title,
            "",
            f"{'epoch':>5}  {'mode':<8}  {'reqs':>5}  {'served':>6}  "
            f"{'fallbk':>6}  {'fail':>4}  {'mpki':>7}  {'fresh':>7}  "
            f"{'decay':>6}  sources",
        ]
        lines.append("-" * len(lines[-1]))
        for e in self.epochs:
            sources = ",".join(
                f"{k}:{v}" for k, v in sorted(e.sources.items())
            )
            lines.append(
                f"{e.epoch:>5}  {'degraded' if e.degraded else 'healthy':<8}  "
                f"{e.requests:>5}  {e.served:>6}  {e.fallbacks:>6}  "
                f"{e.failures:>4}  {e.served_mpki:>7.3f}  "
                f"{e.fresh_mpki:>7.3f}  {e.decay:>6.3f}  {sources}"
            )
        lines.append("")
        lines.append(
            f"{self.requests} requests -> {self.optimizations} "
            f"optimizations ({self.coalesced} coalesced, "
            f"{self.cache_hits} cache hits, {self.fallbacks} fallbacks); "
            f"queue-wait p95 {self.queue_wait_p95_ms:.1f} ms; "
            f"decay ratio {self.decay_ratio:.3f}; "
            f"{'PASS' if self.passes() else 'FAIL'}"
        )
        if self.unhandled_errors:
            lines.append("unhandled errors:")
            lines.extend(f"  {err}" for err in self.unhandled_errors)
        return "\n".join(lines) + "\n"


def _epoch_profiles(exp, epochs: int):
    """Exact per-epoch profiles plus the epoch streams."""
    binary = exp.app.binary
    streams_by_epoch = epoch_streams(exp.trace, epochs)
    profiles = []
    for streams in streams_by_epoch:
        profiler = PixieProfiler(binary)
        for blocks, pids in streams:
            for pid in np.unique(pids):
                profiler.add_stream(blocks[pids == pid])
        profiles.append(profiler.profile())
    return profiles, streams_by_epoch


def _measure(binary, geometry, document, streams) -> "tuple[float, int]":
    """MPKI of one layout document over one epoch's streams."""
    layout = layout_from_dict(document, binary)
    amap = assign_addresses(binary, layout)
    spans = [amap.expand_spans(blocks) for blocks, _pids in streams]
    result = simulate(spans, MemoryHierarchy.l1i_only(geometry))
    return result.mpki, result.instructions


def _gate(binary, document) -> bool:
    """Re-run the repro.check gate fleet-side on a served document."""
    try:
        layout = layout_from_dict(document, binary)
        report = check_layout(binary, layout, target="fleet")
        if report.ok:
            report = check_layout(
                binary, layout, assign_addresses(binary, layout),
                target="fleet",
            )
        return report.ok
    except Exception:
        return False


def run_fleet(
    exp,
    config: Optional[FleetConfig] = None,
    *,
    address=None,
) -> FleetReport:
    """Drive one fleet scenario; returns the epoch-by-epoch report.

    ``exp`` supplies the binary and the (phase-shifting) measurement
    trace.  With ``address`` set the fleet talks to an already-running
    server (and ``kill_after`` must be None — the driver can only kill
    servers it owns); otherwise a server thread is started in-process
    against the experiment's artifact store.
    """
    config = config or FleetConfig()
    combo = Combo.parse(config.combo).value
    binary = exp.app.binary
    geometry = config.geometry
    profiles, streams_by_epoch = _epoch_profiles(exp, config.epochs)

    handle: Optional[ServerThread] = None
    if address is None:
        handle = ServerThread.start(
            binary,
            store=exp.store,
            config=ServerConfig(
                queue_limit=config.queue_limit, workers=config.workers
            ),
        )
        address = handle.address
    elif config.kill_after is not None:
        raise ConfigError(
            "kill_after needs a driver-owned server; drop address= or "
            "kill_after"
        )

    # With a driver-owned server everything shares one metric registry;
    # an external server's counters live in its process and are read
    # over the wire via the health endpoint instead.
    probe: Optional[LayoutClient] = None
    before_remote: Dict[str, int] = {}
    if handle is None:
        probe = LayoutClient(
            address, ClientConfig(max_attempts=1), name="fleet-probe"
        )
        before_remote = _remote_counters(probe)

    before = _serve_counters()
    report = FleetReport(config=config)
    clients = [
        LayoutClient(
            address,
            ClientConfig(
                timeout_s=config.timeout_s,
                max_attempts=config.max_attempts,
                backoff_s=config.backoff_s,
                breaker_threshold=config.breaker_threshold,
                breaker_cooldown_s=config.breaker_cooldown_s,
                seed=index,
            ),
            name=f"client-{index}",
        )
        for index in range(config.clients)
    ]

    try:
        barrier = threading.Barrier(config.clients)
        for epoch_index, (profile, streams) in enumerate(
            zip(profiles, streams_by_epoch)
        ):
            degraded = (
                config.kill_after is not None
                and epoch_index >= config.kill_after
            )
            responses: List[Optional[LayoutResponse]] = [None] * len(clients)
            errors: List[Optional[str]] = [None] * len(clients)

            def fetch(index: int, client: LayoutClient) -> None:
                try:
                    barrier.wait(timeout=60.0)
                    responses[index] = client.fetch_layout(profile, combo)
                except ServeError as exc:
                    errors[index] = f"{client.name}: {exc}"
                except Exception as exc:  # the degraded-mode no-crash gate
                    errors[index] = f"{client.name}: UNHANDLED {exc!r}"
                    report.unhandled_errors.append(errors[index])

            threads = [
                threading.Thread(
                    target=fetch, args=(i, c), name=f"fleet-{i}"
                )
                for i, c in enumerate(clients)
            ]
            with obs.span(
                "serve.fleet_epoch", epoch=epoch_index, degraded=degraded
            ):
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120.0)

            served = [r for r in responses if r is not None and r.ok]
            sources: Dict[str, int] = {}
            for response in served:
                source = response.source or "server"
                sources[source] = sources.get(source, 0) + 1
            fresh_layout = SpikeOptimizer(binary, profile).layout(combo)
            fresh_doc_mpki, instructions = _measure_layout(
                binary, geometry, fresh_layout, streams
            )
            if served:
                served_mpki, _ = _measure(
                    binary, geometry, served[0].layout, streams
                )
                gate_ok = _gate(binary, served[0].layout)
            else:
                served_mpki, gate_ok = float("nan"), False
            report.epochs.append(
                EpochOutcome(
                    epoch=epoch_index,
                    degraded=degraded,
                    instructions=instructions,
                    requests=len(clients),
                    served=len(served),
                    fallbacks=sum(
                        1 for r in served if r.source == SOURCE_FALLBACK
                    ),
                    failures=sum(1 for e in errors if e is not None),
                    sources=sources,
                    served_mpki=served_mpki,
                    fresh_mpki=fresh_doc_mpki,
                    gate_ok=gate_ok,
                )
            )

            if (
                handle is not None
                and config.kill_after is not None
                and epoch_index + 1 == config.kill_after
            ):
                handle.kill()
    finally:
        if handle is not None:
            report.queue_wait_p95_ms = handle.server.queue_wait_p95_ms()
            handle.stop()

    after = _serve_counters()
    after_remote = _remote_counters(probe) if probe is not None else {}
    deltas: Dict[str, int] = {}
    for name in set(after) | set(after_remote):
        delta = after.get(name, 0) - before.get(name, 0)
        delta += after_remote.get(name, 0) - before_remote.get(name, 0)
        if delta:
            deltas[name] = delta
    report.counters = dict(sorted(deltas.items()))
    return report


def _remote_counters(probe: LayoutClient) -> Dict[str, int]:
    """An external server's ``serve.*`` counters (empty when down)."""
    try:
        return dict(probe.health().counters)
    except ServeError:
        return {}


def _measure_layout(binary, geometry, layout, streams):
    """MPKI of one in-memory layout over one epoch's streams."""
    amap = assign_addresses(binary, layout)
    spans = [amap.expand_spans(blocks) for blocks, _pids in streams]
    result = simulate(spans, MemoryHierarchy.l1i_only(geometry))
    return result.mpki, result.instructions


def _serve_counters() -> Dict[str, int]:
    """Current values of every ``serve.*`` counter."""
    return {
        name: payload["value"]
        for name, payload in obs.registry().snapshot().items()
        if name.startswith("serve.") and payload.get("kind") == "counter"
    }
