"""The fleet-side layout client: retries, circuit breaking, fallback.

A client node cannot let layout service hiccups take down transaction
processing, so every failure mode degrades instead of propagating:

* **Timeouts** — every request carries a socket deadline.
* **Retries** — transient failures (refused/dropped connections,
  timeouts, REJECTED admission-control responses) retry with
  exponential backoff plus deterministic jitter (seeded per client,
  so a thundering herd decorrelates but tests reproduce).
* **Circuit breaker** — after ``breaker_threshold`` consecutive
  failures the breaker opens and requests fail fast (no socket work)
  for ``breaker_cooldown_s``; the first request after the cooldown is
  the half-open probe, and its success closes the breaker again.
* **Last-known-good fallback** — :meth:`LayoutClient.fetch_layout`
  remembers every layout it has served; when the service is
  unreachable it returns the cached document (marked
  ``source="fallback"``) instead of raising.  Only a cold client with
  no fallback surfaces :class:`~repro.errors.ServeError`.

Client behaviour is observable through ``serve.retries``,
``serve.fallbacks``, ``serve.client_errors``, and the
``serve.breaker_state`` series (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import obs
from repro.errors import ProtocolError, ServeError
from repro.serve.protocol import (
    HealthRequest,
    HealthResponse,
    LayoutRequest,
    LayoutResponse,
    ProfileSubmit,
    STATUS_OK,
    STATUS_REJECTED,
    SubmitAck,
    encode_message,
    read_message_sync,
)

#: ``LayoutResponse.source`` value for last-known-good fallbacks.
SOURCE_FALLBACK = "fallback"

#: Circuit-breaker states (the values recorded on serve.breaker_state).
BREAKER_CLOSED = 0
BREAKER_HALF_OPEN = 1
BREAKER_OPEN = 2

_BREAKER_NAMES = {
    BREAKER_CLOSED: "closed",
    BREAKER_HALF_OPEN: "half-open",
    BREAKER_OPEN: "open",
}


@dataclass
class ClientConfig:
    """Resilience knobs of one :class:`LayoutClient`."""

    #: Socket deadline per request attempt (connect + round trip).
    timeout_s: float = 5.0
    #: Attempts per request (1 = no retries).
    max_attempts: int = 3
    #: First retry delay; doubles per attempt.
    backoff_s: float = 0.05
    #: Backoff ceiling.
    backoff_max_s: float = 2.0
    #: Jitter fraction applied to each delay (0.2 = up to +-20%).
    jitter: float = 0.2
    #: Consecutive failures that open the breaker.
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before the half-open probe.
    breaker_cooldown_s: float = 1.0
    #: Seed for the jitter RNG (deterministic per client).
    seed: int = 0


class CircuitBreaker:
    """Consecutive-failure breaker with a time-based half-open probe."""

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.state = BREAKER_CLOSED
        self.opened_at = 0.0
        #: closed -> open transitions (exposed for reports).
        self.trips = 0

    def allow(self) -> bool:
        """May a request go out right now?"""
        if self.state == BREAKER_OPEN:
            if time.monotonic() - self.opened_at >= self.cooldown_s:
                self._transition(BREAKER_HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        """A request completed: reset and close."""
        self.failures = 0
        if self.state != BREAKER_CLOSED:
            self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A request failed: count, and open past the threshold.

        A half-open probe failing re-opens immediately (one strike).
        """
        self.failures += 1
        if self.state == BREAKER_HALF_OPEN or (
            self.state == BREAKER_CLOSED and self.failures >= self.threshold
        ):
            self.opened_at = time.monotonic()
            if self.state != BREAKER_OPEN:
                self.trips += 1
            self._transition(BREAKER_OPEN)

    @property
    def state_name(self) -> str:
        """``"closed"``, ``"half-open"``, or ``"open"``."""
        return _BREAKER_NAMES[self.state]

    def _transition(self, state: int) -> None:
        self.state = state
        obs.series("serve.breaker_state").record(state)


@dataclass
class ClientStats:
    """What one client endured, for the fleet report."""

    requests: int = 0
    retries: int = 0
    fallbacks: int = 0
    rejected: int = 0
    errors: int = 0
    breaker_trips: int = 0
    sources: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-ready view."""
        return {
            "requests": self.requests,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "rejected": self.rejected,
            "errors": self.errors,
            "breaker_trips": self.breaker_trips,
            "sources": dict(self.sources),
        }


class LayoutClient:
    """One node's connection to the layout service.

    ``address`` is ``(host, port)`` for TCP or a string path for a
    unix socket.  The client is connection-per-request (the protocol
    is strict request/response), synchronous, and safe to drive from
    one thread per client.
    """

    def __init__(
        self,
        address,
        config: Optional[ClientConfig] = None,
        name: str = "client",
    ) -> None:
        self.address = address
        self.config = config or ClientConfig()
        self.name = name
        self.breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown_s
        )
        self.stats = ClientStats()
        self._rng = random.Random(self.config.seed)
        #: (fingerprint, combo) -> last layout document served to us.
        self._last_good: Dict[Tuple[str, str], Dict] = {}
        #: combo -> most recent layout served for *any* profile, so a
        #: degraded client with a never-served (drifted) profile still
        #: has something valid to run — a stale layout beats no layout.
        self._latest_good: Dict[str, Dict] = {}
        self._submitted: set = set()

    # -- public API -------------------------------------------------------

    def submit_profile(self, profile) -> bool:
        """Ship one profile; True when the server accepted it.

        Already-acknowledged fingerprints are skipped locally.  An
        unreachable server is not fatal here — the submission rides
        along with the next successful exchange.
        """
        frame = ProfileSubmit.from_profile(profile)
        if frame.fingerprint in self._submitted:
            return True
        try:
            reply = self._call(frame)
        except ServeError:
            return False
        if isinstance(reply, SubmitAck):
            self._submitted.add(frame.fingerprint)
            return True
        return False

    def fetch_layout(
        self, profile, combo: str = "all"
    ) -> LayoutResponse:
        """The layout for ``profile``, degrading but never crashing.

        Returns an ok :class:`LayoutResponse` from the server when it
        is healthy, or a synthesized ``source="fallback"`` response
        carrying the last layout this client served for the same key
        when it is not.  Raises :class:`~repro.errors.ServeError` only
        when the service is down *and* no fallback exists.
        """
        fingerprint = profile.fingerprint()
        key = (fingerprint, combo)
        self.stats.requests += 1
        try:
            self._ensure_submitted(profile, fingerprint)
            reply = self._call(LayoutRequest(fingerprint, combo))
        except ServeError as exc:
            return self._fall_back(key, exc)
        if isinstance(reply, LayoutResponse) and reply.ok:
            self._last_good[key] = reply.layout
            self._latest_good[combo] = reply.layout
            source = reply.source or "server"
            self.stats.sources[source] = self.stats.sources.get(source, 0) + 1
            return reply
        detail = getattr(reply, "error", "") or getattr(
            reply, "message", ""
        ) or f"unexpected reply {type(reply).__name__}"
        return self._fall_back(
            key, ServeError(f"layout request failed: {detail}")
        )

    def health(self) -> HealthResponse:
        """One health probe (no retries beyond the standard policy)."""
        reply = self._call(HealthRequest())
        if not isinstance(reply, HealthResponse):
            raise ServeError(
                f"health probe got {type(reply).__name__} instead of "
                "a health response"
            )
        return reply

    # -- internals --------------------------------------------------------

    def _ensure_submitted(self, profile, fingerprint: str) -> None:
        if fingerprint in self._submitted:
            return
        reply = self._call(ProfileSubmit.from_profile(profile))
        if not isinstance(reply, SubmitAck):
            raise ServeError(
                "profile submission refused: "
                f"{getattr(reply, 'message', None) or reply!r}"
            )
        self._submitted.add(fingerprint)

    def _fall_back(self, key, cause: ServeError) -> LayoutResponse:
        document = self._last_good.get(key)
        if document is None:
            document = self._latest_good.get(key[1])
        if document is None:
            self.stats.errors += 1
            obs.counter("serve.client_errors").inc()
            raise ServeError(
                f"{self.name}: layout service unavailable and no "
                f"last-known-good layout for {key[0]}/{key[1]}: {cause}"
            ) from cause
        self.stats.fallbacks += 1
        self.stats.sources[SOURCE_FALLBACK] = (
            self.stats.sources.get(SOURCE_FALLBACK, 0) + 1
        )
        obs.counter("serve.fallbacks").inc()
        return LayoutResponse(
            status=STATUS_OK,
            fingerprint=key[0],
            combo=key[1],
            source=SOURCE_FALLBACK,
            layout=document,
        )

    def _call(self, message):
        """One request with the full resilience policy applied.

        Retries transient failures; raises :class:`ServeError` when
        attempts are exhausted or the breaker is open.
        """
        config = self.config
        last_error: Optional[Exception] = None
        for attempt in range(config.max_attempts):
            if not self.breaker.allow():
                self.stats.errors += 1
                obs.counter("serve.client_errors").inc()
                raise ServeError(
                    f"{self.name}: circuit breaker open "
                    f"({self.breaker.failures} consecutive failures); "
                    "failing fast"
                )
            if attempt:
                self.stats.retries += 1
                obs.counter("serve.retries").inc()
                time.sleep(self._delay(attempt))
            try:
                reply = self._exchange(message)
            except (ConnectionError, socket.timeout, OSError, ProtocolError) as exc:
                last_error = exc
                self._note_failure()
                continue
            if (
                isinstance(reply, LayoutResponse)
                and reply.status == STATUS_REJECTED
            ):
                # Load shedding is server-side backpressure, not a
                # server fault: back off and retry without touching
                # the breaker.
                self.stats.rejected += 1
                last_error = ServeError(reply.error or "request rejected")
                continue
            self.breaker.record_success()
            return reply
        self.stats.errors += 1
        obs.counter("serve.client_errors").inc()
        raise ServeError(
            f"{self.name}: request failed after {config.max_attempts} "
            f"attempt(s): {last_error}"
        ) from last_error

    def _note_failure(self) -> None:
        before = self.breaker.trips
        self.breaker.record_failure()
        if self.breaker.trips != before:
            self.stats.breaker_trips += 1
            obs.counter("serve.breaker_trips").inc()

    def _delay(self, attempt: int) -> float:
        base = min(
            self.config.backoff_max_s,
            self.config.backoff_s * (2 ** (attempt - 1)),
        )
        jitter = 1.0 + self.config.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, base * jitter)

    def _exchange(self, message):
        """One connect / send / receive cycle with a deadline."""
        with self._connect() as sock:
            sock.sendall(encode_message(message))
            with sock.makefile("rb") as stream:
                reply = read_message_sync(stream)
        if reply is None:
            raise ProtocolError("server closed the connection mid-request")
        return reply

    def _connect(self) -> socket.socket:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.settimeout(self.config.timeout_s)
                sock.connect(self.address)
            except BaseException:
                sock.close()
                raise
            return sock
        host, port = self.address
        return socket.create_connection(
            (host, port), timeout=self.config.timeout_s
        )
