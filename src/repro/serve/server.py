"""The layout-optimization service: an asyncio server over the protocol.

Production semantics on top of the offline optimizer:

* **Admission control** — at most ``queue_limit`` optimizations are
  in flight; a request that would exceed it gets an explicit
  ``REJECTED`` response immediately (clients retry with backoff)
  instead of piling onto an unbounded queue.
* **Single-flight coalescing** — concurrent requests for the same
  ``(profile fingerprint, combo)`` share one optimization: the first
  request runs it, the rest await its future and are counted in
  ``serve.coalesced``.
* **Worker pool** — optimizations run off the event loop: in forked
  ``ProcessPoolExecutor`` workers (``workers >= 1`` on fork-capable
  platforms, the production shape) or an in-process thread pool
  (``workers = 0``, the test/embedded shape).
* **Swap gate** — every layout leaving the server (freshly built *or*
  loaded from the disk tier) must pass the ``repro.check`` integrity
  gate; failures bump ``serve.gate_rejected`` and return an error
  response rather than a corrupt layout.

State is per-binary: the server optimizes exactly one binary and
refuses profiles submitted for any other.  All activity lands in
``serve.*`` spans, counters and series (:mod:`repro.obs`).
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.check import check_layout
from repro.errors import LayoutError, ProtocolError, ServeError
from repro.harness.parallel import fork_available
from repro.harness.store import (
    ArtifactStore,
    layout_from_dict,
    layout_to_dict,
)
from repro.ir import Binary, assign_addresses
from repro.layout import Combo, SpikeOptimizer
from repro.pipeline import PipelineRunner, Stage, StageGraph
from repro.serve.cache import DEFAULT_MEMORY_ENTRIES, LayoutCache
from repro.serve.protocol import (
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    LayoutRequest,
    LayoutResponse,
    ProfileSubmit,
    SOURCE_BUILT,
    SOURCE_COALESCED,
    SOURCE_STATIC,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    SubmitAck,
    encode_message,
    read_message,
)
from repro.staticpred import synthesize_profile

#: Set (in the parent, pre-fork) so pool workers inherit the binary
#: without per-task pickling; thread-mode executors read it directly.
_WORKER_BINARY: Optional[Binary] = None


def _set_worker_binary(binary: Binary) -> None:
    """Publish the binary for optimization workers (pre-fork)."""
    global _WORKER_BINARY
    _WORKER_BINARY = binary


def _request_runner(binary: Binary, source: str, combo: str, profile_builder) -> PipelineRunner:
    """The per-request stage graph a worker executes: decode/synthesize
    the profile, then optimize.  Runs with no store — coalescing and
    the tiered :class:`~repro.serve.cache.LayoutCache` own persistence
    at the server layer — but gets the pipeline's tracing (``stage.*``
    spans) for free."""
    graph = StageGraph()
    graph.add(Stage(
        name="profile", detail=source,
        build=lambda _: profile_builder(),
    ))
    graph.add(Stage(
        name="optimize", detail=combo,
        inputs=(f"profile:{source}",),
        build=lambda r: SpikeOptimizer(
            binary, r.value(f"profile:{source}")
        ).layout(combo),
    ))
    return PipelineRunner(graph)


def _optimize_task(submit: ProfileSubmit, combo: str, enqueued_at: float) -> Dict:
    """One optimization, executed inside a worker.

    Returns ``{"layout": <layout document>, "queue_wait_ms": ...}``.
    The queue wait is measured from admission to worker start, so a
    saturated pool shows up in the ``serve.queue_wait_ms`` histogram.
    """
    started = time.time()
    binary = _WORKER_BINARY
    if binary is None:
        raise ServeError("optimization worker has no binary configured")
    runner = _request_runner(
        binary, "submitted", combo, lambda: submit.to_profile(binary)
    )
    layout = runner.value(f"optimize:{combo}")
    return {
        "layout": layout_to_dict(layout),
        "queue_wait_ms": max(0.0, (started - enqueued_at) * 1000.0),
    }


def _static_task(combo: str) -> Dict:
    """Cold-start optimization in a worker: synthesize a static profile
    from the binary's CFG structure and optimize against it."""
    binary = _WORKER_BINARY
    if binary is None:
        raise ServeError("optimization worker has no binary configured")
    runner = _request_runner(
        binary, "static", combo, lambda: synthesize_profile(binary)
    )
    return layout_to_dict(runner.value(f"optimize:{combo}"))


@dataclass
class ServerConfig:
    """Operational knobs of one :class:`LayoutServer`."""

    #: TCP bind host (ignored when ``unix_path`` is set).
    host: str = "127.0.0.1"
    #: TCP bind port; 0 asks the OS for an ephemeral port.
    port: int = 0
    #: Bind a unix domain socket here instead of TCP.
    unix_path: Optional[str] = None
    #: Maximum optimizations in flight before requests are REJECTED.
    queue_limit: int = 8
    #: Optimization worker processes; 0 runs a thread pool in-process.
    workers: int = 0
    #: Run every outgoing layout through the ``repro.check`` gate.
    verify: bool = True
    #: Memory-tier capacity of the layout cache.
    cache_entries: int = DEFAULT_MEMORY_ENTRIES
    #: Distinct submitted profiles kept (LRU beyond this).
    max_profiles: int = 256
    #: Answer requests for unknown profile fingerprints with a layout
    #: built from a statically synthesized profile (cold start) instead
    #: of an error telling the client to submit a profile first.
    static_fallback: bool = True


class LayoutServer:
    """One layout-optimization service instance for one binary."""

    def __init__(
        self,
        binary: Binary,
        *,
        store: Optional[ArtifactStore] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.binary = binary
        self.config = config or ServerConfig()
        self.cache = LayoutCache(
            store, memory_entries=self.config.cache_entries
        )
        self._profiles: "OrderedDict[str, ProfileSubmit]" = OrderedDict()
        self._inflight: Dict[Tuple[str, str], "asyncio.Future"] = {}
        #: combo -> gated static-fallback layout document (cold start).
        self._static_documents: Dict[str, Dict] = {}
        self._static_inflight: Dict[str, "asyncio.Future"] = {}
        self._pending = 0
        self._executor: Optional[Executor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        self._started_at = time.time()
        self._queue_waits_ms: List[float] = []
        #: (host, port) or the unix path once the server is listening.
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle --------------------------------------------------------

    def _make_executor(self) -> Executor:
        _set_worker_binary(self.binary)
        if self.config.workers >= 1 and fork_available():
            import multiprocessing

            return ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return ThreadPoolExecutor(
            max_workers=max(1, self.config.workers or 1),
            thread_name_prefix="serve-opt",
        )

    async def start(self) -> "LayoutServer":
        """Bind and start accepting connections; returns self."""
        self._executor = self._make_executor()
        self._started_at = time.time()
        if self.config.unix_path:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path
            )
            self.address = self.config.unix_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port
            )
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]
        return self

    async def stop(self) -> None:
        """Stop accepting, drop open connections, shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self._writers.clear()
        for future in list(self._inflight.values()):
            if not future.done():
                future.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.append(writer)
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    obs.counter("serve.protocol_errors").inc()
                    writer.write(encode_message(ErrorResponse(str(exc))))
                    await writer.drain()
                    break
                if message is None:
                    break
                response = await self._dispatch(message)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if writer in self._writers:
                self._writers.remove(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, message):
        with obs.span("serve.request", type=message.TYPE):
            if isinstance(message, ProfileSubmit):
                return self._handle_submit(message)
            if isinstance(message, LayoutRequest):
                return await self._handle_layout(message)
            if isinstance(message, HealthRequest):
                return self._handle_health()
            obs.counter("serve.protocol_errors").inc()
            return ErrorResponse(
                f"unexpected message type {message.TYPE!r} "
                "(server accepts profile_submit/layout_request/health)"
            )

    # -- request handlers -------------------------------------------------

    def _handle_submit(self, submit: ProfileSubmit):
        obs.counter("serve.submissions").inc()
        if submit.fingerprint in self._profiles:
            self._profiles.move_to_end(submit.fingerprint)
            return SubmitAck(fingerprint=submit.fingerprint, known=True)
        try:
            profile = submit.to_profile(self.binary)
        except ProtocolError as exc:
            obs.counter("serve.bad_submissions").inc()
            return ErrorResponse(str(exc))
        actual = profile.fingerprint()
        if actual != submit.fingerprint:
            obs.counter("serve.bad_submissions").inc()
            return ErrorResponse(
                f"submitted fingerprint {submit.fingerprint!r} does not "
                f"match profile content ({actual!r})"
            )
        self._profiles[submit.fingerprint] = submit
        while len(self._profiles) > self.config.max_profiles:
            self._profiles.popitem(last=False)
        return SubmitAck(fingerprint=submit.fingerprint, known=False)

    async def _handle_layout(self, request: LayoutRequest) -> LayoutResponse:
        obs.counter("serve.requests").inc()
        try:
            combo = Combo.parse(request.combo).value
        except LayoutError as exc:
            return LayoutResponse(
                status=STATUS_ERROR,
                fingerprint=request.fingerprint,
                combo=request.combo,
                error=str(exc),
            )
        key = (request.fingerprint, combo)

        document, tier = self.cache.get(request.fingerprint, combo)
        if document is not None and tier == "disk" and self.config.verify:
            # Memory-tier entries were gated on insert; the disk tier
            # may hold artifacts written by other processes, so they
            # pass the gate on their way out.
            if not self._gate_ok(document):
                document = None
        if document is not None:
            return LayoutResponse(
                status=STATUS_OK,
                fingerprint=request.fingerprint,
                combo=combo,
                source=tier,
                layout=document,
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            obs.counter("serve.coalesced").inc()
            template = await asyncio.shield(inflight)
            response = LayoutResponse(**vars(template))
            if response.status == STATUS_OK:
                response.source = SOURCE_COALESCED
            return response

        submit = self._profiles.get(request.fingerprint)
        if submit is None:
            if self.config.static_fallback:
                return await self._serve_static(request, combo)
            return LayoutResponse(
                status=STATUS_ERROR,
                fingerprint=request.fingerprint,
                combo=combo,
                error=(
                    f"unknown profile fingerprint {request.fingerprint!r}; "
                    "send profile_submit first"
                ),
            )

        if self._pending >= self.config.queue_limit:
            obs.counter("serve.rejected").inc()
            return LayoutResponse(
                status=STATUS_REJECTED,
                fingerprint=request.fingerprint,
                combo=combo,
                error=(
                    f"admission control: {self._pending} optimizations in "
                    f"flight (limit {self.config.queue_limit}); retry later"
                ),
            )

        loop = asyncio.get_event_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        self._pending += 1
        obs.series("serve.queue_depth").record(self._pending)
        try:
            response = await self._optimize(submit, combo)
        except Exception as exc:  # belt and braces: never strand waiters
            obs.counter("serve.optimize_errors").inc()
            response = LayoutResponse(
                status=STATUS_ERROR,
                fingerprint=request.fingerprint,
                combo=combo,
                error=f"internal error: {exc}",
            )
        finally:
            self._pending -= 1
            self._inflight.pop(key, None)
        if not future.done():
            future.set_result(response)
        return response

    async def _optimize(
        self, submit: ProfileSubmit, combo: str
    ) -> LayoutResponse:
        loop = asyncio.get_event_loop()
        enqueued = time.time()
        try:
            with obs.span("serve.optimize", combo=combo):
                outcome = await loop.run_in_executor(
                    self._executor, _optimize_task, submit, combo, enqueued
                )
        except Exception as exc:  # worker died, layout error, ...
            obs.counter("serve.optimize_errors").inc()
            return LayoutResponse(
                status=STATUS_ERROR,
                fingerprint=submit.fingerprint,
                combo=combo,
                error=f"optimization failed: {exc}",
            )
        document = outcome["layout"]
        wait_ms = float(outcome["queue_wait_ms"])
        self._queue_waits_ms.append(wait_ms)
        obs.histogram("serve.queue_wait_ms").record(wait_ms)
        obs.counter("serve.optimizations").inc()
        if self.config.verify and not self._gate_ok(document):
            return LayoutResponse(
                status=STATUS_ERROR,
                fingerprint=submit.fingerprint,
                combo=combo,
                error="built layout failed the repro.check integrity gate",
                queue_wait_ms=wait_ms,
            )
        self.cache.put(submit.fingerprint, combo, document)
        return LayoutResponse(
            status=STATUS_OK,
            fingerprint=submit.fingerprint,
            combo=combo,
            source=SOURCE_BUILT,
            layout=document,
            queue_wait_ms=wait_ms,
        )

    async def _serve_static(
        self, request: LayoutRequest, combo: str
    ) -> LayoutResponse:
        """Cold start: the fingerprint is unknown, so serve a layout
        built from the static profile synthesized off the binary's CFG
        (:mod:`repro.staticpred`) -- gated like any other layout --
        instead of turning the client away empty-handed.

        One build per combo, coalesced and cached for the lifetime of
        the server (static synthesis is deterministic per binary).
        """
        document = self._static_documents.get(combo)
        if document is None:
            inflight = self._static_inflight.get(combo)
            if inflight is None:
                loop = asyncio.get_event_loop()
                inflight = loop.run_in_executor(
                    self._executor, _static_task, combo
                )
                self._static_inflight[combo] = inflight
            else:
                obs.counter("serve.coalesced").inc()
            try:
                with obs.span("serve.static_optimize", combo=combo):
                    document = await asyncio.shield(inflight)
            except Exception as exc:
                obs.counter("serve.optimize_errors").inc()
                return LayoutResponse(
                    status=STATUS_ERROR,
                    fingerprint=request.fingerprint,
                    combo=combo,
                    error=f"static fallback failed: {exc}",
                )
            finally:
                self._static_inflight.pop(combo, None)
            if self.config.verify and not self._gate_ok(document):
                return LayoutResponse(
                    status=STATUS_ERROR,
                    fingerprint=request.fingerprint,
                    combo=combo,
                    error=(
                        "static fallback layout failed the repro.check "
                        "integrity gate"
                    ),
                )
            self._static_documents[combo] = document
        obs.counter("serve.static_served").inc()
        return LayoutResponse(
            status=STATUS_OK,
            fingerprint=request.fingerprint,
            combo=combo,
            source=SOURCE_STATIC,
            layout=document,
        )

    def _gate_ok(self, document: Dict) -> bool:
        """The ``repro.check`` swap gate over one layout document.

        Structure checks run first on their own; address checks only
        when the structure is clean (mirrors the online swap gate).
        """
        with obs.span("serve.gate"):
            try:
                layout = layout_from_dict(document)
                report = check_layout(self.binary, layout, target="serve")
                if report.ok:
                    report = check_layout(
                        self.binary,
                        layout,
                        assign_addresses(self.binary, layout),
                        target="serve",
                    )
            except Exception:
                report = None
        if report is not None and report.ok:
            return True
        obs.counter("serve.gate_rejected").inc()
        return False

    def _handle_health(self) -> HealthResponse:
        counters = {
            name: payload["value"]
            for name, payload in obs.registry().snapshot().items()
            if name.startswith("serve.") and payload.get("kind") == "counter"
        }
        return HealthResponse(
            status="ok",
            uptime_s=max(0.0, time.time() - self._started_at),
            inflight=self._pending,
            profiles=len(self._profiles),
            counters=counters,
        )

    # -- introspection ----------------------------------------------------

    def queue_wait_p95_ms(self) -> float:
        """The 95th-percentile optimization queue wait so far (ms)."""
        waits = sorted(self._queue_waits_ms)
        if not waits:
            return 0.0
        index = min(len(waits) - 1, int(0.95 * (len(waits) - 1) + 0.5))
        return waits[index]


class ServerThread:
    """Host a :class:`LayoutServer` on a background event loop.

    The in-process deployment shape used by the fleet driver and the
    tests: ``start()`` returns once the server is listening; ``stop()``
    shuts it down gracefully; ``kill()`` tears the listening socket and
    every open connection down abruptly — the degraded-mode scenario.
    """

    def __init__(self, server: LayoutServer) -> None:
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @classmethod
    def start(
        cls,
        binary: Binary,
        *,
        store: Optional[ArtifactStore] = None,
        config: Optional[ServerConfig] = None,
        timeout: float = 10.0,
    ) -> "ServerThread":
        """Create, start, and wait for a server; returns the handle."""
        handle = cls(LayoutServer(binary, store=store, config=config))
        handle._launch(timeout)
        return handle

    @property
    def address(self):
        """Where the server listens: ``(host, port)`` or a unix path."""
        return self.server.address

    def _launch(self, timeout: float) -> None:
        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # bind failure etc.
                self._startup_error = exc
                self._ready.set()
                loop.close()
                return
            self._ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=run, name="layout-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError("layout server did not start in time")
        if self._startup_error is not None:
            raise ServeError(
                f"layout server failed to start: {self._startup_error}"
            )

    def _shutdown(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, close, join the thread."""
        self._shutdown()

    def kill(self) -> None:
        """Abrupt death: connections drop mid-conversation.

        From the clients' point of view this is a crashed server —
        exactly what the degraded-mode fleet scenario exercises.
        """
        self._shutdown()
