"""Two-tier layout cache: in-memory LRU over the persistent store.

The server answers most traffic from here.  Tier 1 is a bounded
in-process LRU of finished layout documents keyed by ``(profile
fingerprint, combo)``; tier 2 is the content-addressed
:class:`~repro.harness.store.ArtifactStore` the offline pipeline
already uses (entries named ``serve-layout-<combo>.json`` under the
profile fingerprint), so layouts survive server restarts and are
shared with :class:`~repro.online.relayout.AdaptiveRelayout` runs on
the same cache directory.

Every lookup lands in the ``serve.cache_*`` counters: ``cache_hits``
(memory), ``cache_disk_hits`` (promoted from disk), ``cache_misses``,
and ``cache_evictions``.  Disk-tier writes go through the store's
atomic ``save`` so a torn artifact can never be served.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.harness.store import ArtifactStore, load_layout, save_layout
from repro.harness.store import layout_from_dict, layout_to_dict

#: Default number of layout documents the memory tier holds.
DEFAULT_MEMORY_ENTRIES = 128


@dataclass
class CacheStats:
    """Counter snapshot for reports and the health endpoint."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready view."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
        }


class LayoutCache:
    """Thread-safe (fingerprint, combo) -> layout-document cache.

    Values are the JSON-ready dicts of
    :func:`repro.harness.store.layout_to_dict` — exactly what goes on
    the wire — so a hit serves with zero conversion work.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        self.store = store
        self.memory_entries = max(1, memory_entries)
        self._memory: "OrderedDict[Tuple[str, str], Dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    @staticmethod
    def _artifact(combo: str) -> str:
        return f"serve-layout-{combo}.json"

    def get(self, fingerprint: str, combo: str) -> Tuple[Optional[Dict], str]:
        """Look one layout up; returns ``(document, tier)``.

        ``tier`` is ``"memory"``, ``"disk"``, or ``""`` on a miss.  A
        disk hit is promoted into the memory tier.
        """
        key = (fingerprint, combo)
        with self._lock:
            document = self._memory.get(key)
            if document is not None:
                self._memory.move_to_end(key)
                self._stats.memory_hits += 1
                obs.counter("serve.cache_hits").inc()
                return document, "memory"
        if self.store is not None:
            layout = self.store.load(
                fingerprint, self._artifact(combo), load_layout
            )
            if layout is not None:
                document = layout_to_dict(layout)
                self._insert(key, document)
                with self._lock:
                    self._stats.disk_hits += 1
                obs.counter("serve.cache_disk_hits").inc()
                return document, "disk"
        with self._lock:
            self._stats.misses += 1
        obs.counter("serve.cache_misses").inc()
        return None, ""

    def put(self, fingerprint: str, combo: str, document: Dict) -> None:
        """Install one finished (already gated) layout document.

        The memory tier is updated synchronously; the disk tier write
        is atomic and best-effort (a read-only store degrades to
        memory-only caching).
        """
        self._insert((fingerprint, combo), document)
        if self.store is not None:
            self.store.save(
                fingerprint,
                self._artifact(combo),
                layout_from_dict(document),
                save_layout,
            )

    def _insert(self, key: Tuple[str, str], document: Dict) -> None:
        with self._lock:
            self._memory[key] = document
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                self._stats.evictions += 1
                obs.counter("serve.cache_evictions").inc()

    def stats(self) -> CacheStats:
        """A point-in-time copy of the cache counters."""
        with self._lock:
            return CacheStats(
                memory_hits=self._stats.memory_hits,
                disk_hits=self._stats.disk_hits,
                misses=self._stats.misses,
                evictions=self._stats.evictions,
                entries=len(self._memory),
            )

    def __len__(self) -> int:
        return len(self._memory)
