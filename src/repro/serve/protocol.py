"""The serve wire protocol: versioned messages over length-prefixed JSONL.

Every message on the wire is one *frame*: a 4-byte big-endian length
followed by exactly that many bytes of UTF-8 JSON terminated by a
newline (so a captured stream is also valid JSONL once the length
prefixes are stripped).  The JSON envelope is::

    {"v": 1, "type": "layout_request", "payload": {...}}

``v`` is :data:`PROTOCOL_VERSION`; a server refuses frames from a
different major version with an :class:`ErrorResponse` rather than
guessing.  ``type`` selects one of the dataclasses below, each of
which round-trips through ``to_wire()`` / ``from_wire()``.

The conversation is strictly request/response: a client sends
:class:`ProfileSubmit` / :class:`LayoutRequest` / :class:`HealthRequest`
frames and reads exactly one response frame per request, over TCP or a
unix socket.  Framing and payload errors raise
:class:`~repro.errors.ProtocolError` on the reading side.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

import numpy as np

from repro.errors import ProtocolError
from repro.ir import Binary
from repro.profiles.profile import Profile

#: Bump on any incompatible change to the envelope or payload shapes.
PROTOCOL_VERSION = 1

#: Upper bound on one frame; anything larger is a protocol violation
#: (guards the server against unbounded allocations from bad peers).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: ``LayoutResponse.status`` values.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"

#: ``LayoutResponse.source`` values (how the layout was produced).
SOURCE_MEMORY = "memory"
SOURCE_DISK = "disk"
SOURCE_BUILT = "built"
SOURCE_COALESCED = "coalesced"
#: Cold-start answer: no profile known, layout built from the static
#: profile synthesized off the binary's CFG (:mod:`repro.staticpred`).
SOURCE_STATIC = "static"


@dataclass
class ProfileSubmit:
    """A client ships one execution profile to the server.

    The profile is keyed by its content fingerprint
    (:meth:`repro.profiles.profile.Profile.fingerprint`), which later
    :class:`LayoutRequest` frames reference, so identical profiles
    from many clients submit (and optimize) once.
    """

    TYPE = "profile_submit"

    binary: str
    fingerprint: str
    block_counts: List[int]
    edges: List[List[int]]

    @classmethod
    def from_profile(cls, profile: Profile) -> "ProfileSubmit":
        """Build the submission frame for one in-memory profile."""
        return cls(
            binary=profile.binary.name,
            fingerprint=profile.fingerprint(),
            block_counts=[int(c) for c in profile.block_counts],
            edges=[
                [int(src), int(dst), int(count)]
                for (src, dst), count in sorted(profile.edge_counts.items())
                if count
            ],
        )

    def to_profile(self, binary: Binary) -> Profile:
        """Rebuild the profile against the server's binary.

        Raises :class:`~repro.errors.ProtocolError` when the submission
        belongs to a different binary (name or block-count mismatch).
        """
        if self.binary != binary.name:
            raise ProtocolError(
                f"profile is for binary {self.binary!r}, "
                f"server optimizes {binary.name!r}"
            )
        if len(self.block_counts) != binary.num_blocks:
            raise ProtocolError(
                f"profile covers {len(self.block_counts)} blocks, "
                f"binary has {binary.num_blocks}"
            )
        profile = Profile(binary)
        profile.block_counts = np.asarray(self.block_counts, dtype=np.int64)
        for src, dst, count in self.edges:
            profile.edge_counts[(int(src), int(dst))] = int(count)
        return profile

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {
            "binary": self.binary,
            "fingerprint": self.fingerprint,
            "block_counts": self.block_counts,
            "edges": self.edges,
        }

    @classmethod
    def from_wire(cls, payload: Dict) -> "ProfileSubmit":
        """Parse the payload (shape errors raise ProtocolError)."""
        return cls(
            binary=str(payload["binary"]),
            fingerprint=str(payload["fingerprint"]),
            block_counts=list(payload["block_counts"]),
            edges=[list(edge) for edge in payload["edges"]],
        )


@dataclass
class SubmitAck:
    """Server acknowledgement of a :class:`ProfileSubmit`.

    ``known`` is True when the server already held the profile (the
    submission was deduplicated by fingerprint).
    """

    TYPE = "submit_ack"

    fingerprint: str
    known: bool = False

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {"fingerprint": self.fingerprint, "known": self.known}

    @classmethod
    def from_wire(cls, payload: Dict) -> "SubmitAck":
        """Parse the payload."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            known=bool(payload["known"]),
        )


@dataclass
class LayoutRequest:
    """Ask for the optimized layout of a previously submitted profile."""

    TYPE = "layout_request"

    fingerprint: str
    combo: str = "all"

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {"fingerprint": self.fingerprint, "combo": self.combo}

    @classmethod
    def from_wire(cls, payload: Dict) -> "LayoutRequest":
        """Parse the payload."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            combo=str(payload.get("combo", "all")),
        )


@dataclass
class LayoutResponse:
    """The server's answer to a :class:`LayoutRequest`.

    ``status`` is ``"ok"`` (``layout`` carries the
    :func:`repro.harness.store.layout_to_dict` document), ``"rejected"``
    (admission control shed the request — retry later), or ``"error"``
    (``error`` says why; e.g. unknown fingerprint, gate failure).
    ``source`` records which tier produced an ok layout; ``queue_wait_ms``
    is how long the request sat before its optimization started.
    """

    TYPE = "layout_response"

    status: str
    fingerprint: str = ""
    combo: str = ""
    source: str = ""
    layout: Optional[Dict] = None
    error: str = ""
    queue_wait_ms: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the response carries a served layout."""
        return self.status == STATUS_OK and self.layout is not None

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {
            "status": self.status,
            "fingerprint": self.fingerprint,
            "combo": self.combo,
            "source": self.source,
            "layout": self.layout,
            "error": self.error,
            "queue_wait_ms": self.queue_wait_ms,
        }

    @classmethod
    def from_wire(cls, payload: Dict) -> "LayoutResponse":
        """Parse the payload."""
        return cls(
            status=str(payload["status"]),
            fingerprint=str(payload.get("fingerprint", "")),
            combo=str(payload.get("combo", "")),
            source=str(payload.get("source", "")),
            layout=payload.get("layout"),
            error=str(payload.get("error", "")),
            queue_wait_ms=float(payload.get("queue_wait_ms", 0.0)),
        )


@dataclass
class HealthRequest:
    """Liveness / load probe."""

    TYPE = "health"

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {}

    @classmethod
    def from_wire(cls, payload: Dict) -> "HealthRequest":
        """Parse the payload."""
        return cls()


@dataclass
class HealthResponse:
    """Server status snapshot: load plus the ``serve.*`` counters."""

    TYPE = "health_response"

    status: str = "ok"
    uptime_s: float = 0.0
    inflight: int = 0
    profiles: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {
            "status": self.status,
            "uptime_s": self.uptime_s,
            "inflight": self.inflight,
            "profiles": self.profiles,
            "counters": self.counters,
        }

    @classmethod
    def from_wire(cls, payload: Dict) -> "HealthResponse":
        """Parse the payload."""
        return cls(
            status=str(payload.get("status", "ok")),
            uptime_s=float(payload.get("uptime_s", 0.0)),
            inflight=int(payload.get("inflight", 0)),
            profiles=int(payload.get("profiles", 0)),
            counters=dict(payload.get("counters", {})),
        )


@dataclass
class ErrorResponse:
    """Protocol-level refusal (bad version, unknown type, bad frame)."""

    TYPE = "error"

    message: str

    def to_wire(self) -> Dict:
        """JSON-ready payload."""
        return {"message": self.message}

    @classmethod
    def from_wire(cls, payload: Dict) -> "ErrorResponse":
        """Parse the payload."""
        return cls(message=str(payload.get("message", "")))


#: type string -> message class, for decoding.
MESSAGE_TYPES: Dict[str, Type] = {
    cls.TYPE: cls
    for cls in (
        ProfileSubmit,
        SubmitAck,
        LayoutRequest,
        LayoutResponse,
        HealthRequest,
        HealthResponse,
        ErrorResponse,
    )
}


def encode_message(message) -> bytes:
    """One message as a complete wire frame (length prefix + JSONL)."""
    body = (
        json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "type": message.TYPE,
                "payload": message.to_wire(),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        + b"\n"
    )
    return struct.pack("!I", len(body)) + body


def decode_body(body: bytes):
    """Decode one frame body (sans length prefix) into a message.

    Raises :class:`~repro.errors.ProtocolError` on malformed JSON, a
    version mismatch, an unknown type, or a payload of the wrong shape.
    """
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame body: {exc}") from exc
    if not isinstance(envelope, dict):
        raise ProtocolError(
            f"frame body is {type(envelope).__name__}, expected an envelope"
        )
    version = envelope.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    mtype = envelope.get("type")
    cls = MESSAGE_TYPES.get(mtype)
    if cls is None:
        raise ProtocolError(f"unknown message type {mtype!r}")
    try:
        return cls.from_wire(envelope.get("payload") or {})
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed {mtype!r} payload: {exc!r}"
        ) from exc


def _check_frame_length(length: int) -> None:
    if length <= 0 or length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"invalid frame length {length} "
            f"(limit {MAX_FRAME_BYTES} bytes)"
        )


async def read_message(reader):
    """Read one message from an ``asyncio.StreamReader``.

    Returns None on clean EOF before a frame starts; raises
    :class:`~repro.errors.ProtocolError` on a truncated or invalid
    frame.
    """
    import asyncio

    try:
        header = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ProtocolError("connection closed mid-frame header") from exc
    (length,) = struct.unpack("!I", header)
    _check_frame_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame body") from exc
    return decode_body(body)


def read_message_sync(stream):
    """Read one message from a blocking binary stream (``sock.makefile``).

    Same semantics as :func:`read_message`: None on clean EOF,
    :class:`~repro.errors.ProtocolError` on truncation or bad frames.
    """
    header = _read_exact(stream, 4)
    if header is None:
        return None
    (length,) = struct.unpack("!I", header)
    _check_frame_length(length)
    body = _read_exact(stream, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame body")
    return decode_body(body)


def _read_exact(stream, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed after {got} of {n} frame bytes"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)
