"""repro: reproduction of "Code Layout Optimizations for Transaction
Processing Workloads" (Ramirez et al., ISCA 2001).

Public entry points:

* :mod:`repro.ir` -- the binary IR and layout/address machinery.
* :mod:`repro.layout` -- the Spike-style optimizer (the paper's
  contribution).
* :mod:`repro.profiles` -- Pixie/DCPI-style profilers.
* :mod:`repro.db`, :mod:`repro.workloads` -- the mini-DBMS and TPC-B.
* :mod:`repro.progen`, :mod:`repro.osmodel` -- synthetic binaries.
* :mod:`repro.execution` -- the CFG interpreter and 4-CPU system model.
* :mod:`repro.cache`, :mod:`repro.timing` -- memory-system and timing
  simulators.
* :mod:`repro.harness` -- the experiment pipeline behind the
  per-figure benchmarks.
"""

__version__ = "1.0.0"
