"""Write-ahead log with group commit.

Log records accumulate in an in-memory log buffer; ``flush`` hardens
everything up to the current LSN (one "disk write"), firing the
``on_flush`` hook that the full-system model maps to a write syscall.
Commits that were covered by somebody else's flush ride along for free
-- that is group commit, and it is why OLTP systems run many server
processes per CPU to hide log-write latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import DatabaseError
from repro.db.storage import RID


class LogKind(enum.Enum):
    BEGIN = "begin"
    UPDATE = "update"
    INSERT = "insert"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One WAL record."""

    lsn: int
    txn_id: int
    kind: LogKind
    table: str = ""
    rid: Optional[RID] = None
    before: bytes = b""
    after: bytes = b""

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size (header + images)."""
        return 32 + len(self.before) + len(self.after)


class LogManager:
    """The WAL: an append-only record stream with a volatile tail."""

    def __init__(self) -> None:
        self._next_lsn = 1
        self._buffer: List[LogRecord] = []
        self._flushed: List[LogRecord] = []
        self.flushed_lsn = 0
        self.flushes = 0
        #: Commits hardened per flush call (group-commit batch sizes).
        self.group_sizes: List[int] = []
        self._pending_commits = 0
        #: Hook fired on each physical flush: f(bytes_written).
        self.on_flush: Optional[Callable[[int], None]] = None

    def append(
        self,
        txn_id: int,
        kind: LogKind,
        table: str = "",
        rid: Optional[RID] = None,
        before: bytes = b"",
        after: bytes = b"",
    ) -> int:
        """Append a record to the volatile tail; returns its LSN."""
        record = LogRecord(
            lsn=self._next_lsn,
            txn_id=txn_id,
            kind=kind,
            table=table,
            rid=rid,
            before=before,
            after=after,
        )
        self._next_lsn += 1
        self._buffer.append(record)
        if kind is LogKind.COMMIT:
            self._pending_commits += 1
        return record.lsn

    def flush(self) -> int:
        """Harden the tail; returns bytes written (0 if already clean)."""
        if not self._buffer:
            return 0
        nbytes = sum(r.size_bytes for r in self._buffer)
        self._flushed.extend(self._buffer)
        self.flushed_lsn = self._flushed[-1].lsn
        self._buffer.clear()
        self.flushes += 1
        self.group_sizes.append(self._pending_commits)
        self._pending_commits = 0
        if self.on_flush is not None:
            self.on_flush(nbytes)
        return nbytes

    def is_hardened(self, lsn: int) -> bool:
        return lsn <= self.flushed_lsn

    def hardened_records(self) -> List[LogRecord]:
        """All records that survived (i.e. were flushed) -- what crash
        recovery sees."""
        return list(self._flushed)

    @property
    def tail_bytes(self) -> int:
        return sum(r.size_bytes for r in self._buffer)


def replay(records: List[LogRecord], store) -> Tuple[int, int]:
    """Redo committed work against a page store (crash recovery).

    Applies after-images of every record belonging to a transaction
    whose COMMIT made it to the hardened log; loser transactions are
    ignored (their page writes never reached the store in our model,
    so undo is unnecessary -- a no-steal policy).

    Returns (transactions_redone, records_applied).
    """
    winners = {r.txn_id for r in records if r.kind is LogKind.COMMIT}
    applied = 0
    for record in records:
        if record.txn_id not in winners:
            continue
        if record.kind is LogKind.UPDATE:
            page = store.read(record.rid[0])
            page.update(record.rid[1], record.after)
            page.set_lsn(record.lsn)
            store.write(page)
            applied += 1
        elif record.kind is LogKind.INSERT:
            page = store.read(record.rid[0])
            # Redo is idempotent: skip if the slot already exists.
            if record.rid[1] >= page.nslots:
                slot = page.insert(record.after)
                if slot != record.rid[1]:
                    raise DatabaseError(
                        f"replay diverged: expected slot {record.rid[1]}, got {slot}"
                    )
                page.set_lsn(record.lsn)
                store.write(page)
                applied += 1
        elif record.kind is LogKind.DELETE:
            page = store.read(record.rid[0])
            if not page.is_deleted(record.rid[1]):
                page.delete(record.rid[1])
                page.set_lsn(record.lsn)
                store.write(page)
                applied += 1
    return len(winners), applied
