"""Miniature relational DBMS: the Oracle stand-in substrate."""

from repro.db.btree import BTree
from repro.db.buffer import BufferPool
from repro.db.engine import Engine, LockWait, Table
from repro.db.instrument import CallEvent, CallTrace, NullTrace, TracedBufferPool
from repro.db.lock import LockManager, LockMode
from repro.db.pages import PAGE_SIZE, Page
from repro.db.rows import Column, RowCodec, int_col, pad_col
from repro.db.storage import HeapFile, PageStore, RID
from repro.db.txn import Transaction, TransactionManager, TxnState
from repro.db.wal import LogKind, LogManager, LogRecord, replay

__all__ = [
    "BTree",
    "BufferPool",
    "CallEvent",
    "CallTrace",
    "Column",
    "Engine",
    "HeapFile",
    "LockManager",
    "LockMode",
    "LockWait",
    "LogKind",
    "LogManager",
    "LogRecord",
    "NullTrace",
    "PAGE_SIZE",
    "Page",
    "PageStore",
    "RID",
    "RowCodec",
    "Table",
    "TracedBufferPool",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "int_col",
    "pad_col",
    "replay",
]
