"""Buffer pool: fixed frames over the page store, LRU replacement.

Supports pin/unpin with dirty tracking and write-back on eviction.
Access hooks (`on_access`) let the instrumentation layer observe
hit/miss behaviour -- buffer misses are what turn into disk-read
syscalls in the full-system model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import BufferPoolError
from repro.db.pages import Page
from repro.db.storage import PageStore


@dataclass
class _Frame:
    page: Page
    pins: int = 0
    dirty: bool = False


class BufferPool:
    """LRU buffer pool of ``capacity`` page frames."""

    def __init__(self, store: PageStore, capacity: int = 256) -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self.store = store
        self.capacity = capacity
        #: Frames in LRU order (least recent first).
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Hook fired on every fetch: f(page_id, hit).
        self.on_access: Optional[Callable[[int, bool], None]] = None

    # -- public API ---------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Pin a page, reading it from the store on a miss."""
        frame = self._frames.get(page_id)
        if frame is not None:
            self.hits += 1
            self._frames.move_to_end(page_id)
            frame.pins += 1
            if self.on_access is not None:
                self.on_access(page_id, True)
            return frame.page
        self.misses += 1
        if self.on_access is not None:
            self.on_access(page_id, False)
        page = self.store.read(page_id)
        self._admit(page, pins=1)
        return page

    def new_page(self) -> Page:
        """Allocate a fresh page, pinned and dirty."""
        page = self.store.allocate()
        self._admit(page, pins=1, dirty=True)
        return page

    def unpin(self, page_id: int, dirty: bool) -> None:
        """Release one pin, optionally marking the page dirty."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pins == 0:
            raise BufferPoolError(f"unpin of page {page_id} that is not pinned")
        frame.pins -= 1
        frame.dirty = frame.dirty or dirty

    def flush_all(self) -> int:
        """Write every dirty frame back; returns pages written."""
        written = 0
        for frame in self._frames.values():
            if frame.dirty:
                self.store.write(frame.page)
                frame.dirty = False
                written += 1
        return written

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- internals -----------------------------------------------------------

    def _admit(self, page: Page, pins: int, dirty: bool = False) -> None:
        if len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_id] = _Frame(page=page, pins=pins, dirty=dirty)

    def _evict_one(self) -> None:
        for page_id, frame in self._frames.items():  # LRU order
            if frame.pins == 0:
                if frame.dirty:
                    self.store.write(frame.page)
                del self._frames[page_id]
                self.evictions += 1
                return
        raise BufferPoolError(
            f"buffer pool exhausted: all {self.capacity} frames are pinned"
        )
