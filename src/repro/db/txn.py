"""Transactions: strict two-phase locking with WAL-backed durability."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.errors import TransactionError
from repro.db.lock import LockManager
from repro.db.storage import RID
from repro.db.wal import LogKind, LogManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class UndoEntry:
    """Enough to reverse one modification."""

    table: str
    rid: RID
    kind: LogKind
    before: bytes


@dataclass
class Transaction:
    """One transaction's state."""

    txn_id: int
    state: TxnState = TxnState.ACTIVE
    undo: List[UndoEntry] = field(default_factory=list)
    last_lsn: int = 0

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"txn {self.txn_id} is {self.state.value}, not active"
            )


class TransactionManager:
    """Begin/commit/abort protocol over the lock and log managers."""

    def __init__(self, log: LogManager, locks: LockManager) -> None:
        self.log = log
        self.locks = locks
        self._next_id = 1
        self.active: dict = {}
        self.committed = 0
        self.aborted = 0

    def begin(self) -> Transaction:
        txn = Transaction(txn_id=self._next_id)
        self._next_id += 1
        self.active[txn.txn_id] = txn
        txn.last_lsn = self.log.append(txn.txn_id, LogKind.BEGIN)
        return txn

    def commit(self, txn: Transaction) -> List[int]:
        """Commit: log COMMIT, force the log, release locks.

        Returns transaction ids whose lock waits were granted by the
        release (the scheduler uses this to wake processes).
        """
        txn.require_active()
        txn.last_lsn = self.log.append(txn.txn_id, LogKind.COMMIT)
        self.log.flush()  # durability point (group commit rides along)
        txn.state = TxnState.COMMITTED
        del self.active[txn.txn_id]
        self.committed += 1
        return self.locks.release_all(txn.txn_id)

    def abort(self, txn: Transaction, apply_undo) -> List[int]:
        """Abort: undo modifications (newest first), log ABORT, release.

        ``apply_undo`` is a callable ``f(UndoEntry)`` supplied by the
        engine that physically reverses one modification.
        """
        txn.require_active()
        for entry in reversed(txn.undo):
            apply_undo(entry)
        txn.last_lsn = self.log.append(txn.txn_id, LogKind.ABORT)
        txn.state = TxnState.ABORTED
        del self.active[txn.txn_id]
        self.aborted += 1
        self.locks.cancel_waits(txn.txn_id)
        return self.locks.release_all(txn.txn_id)
