"""Two-phase-locking lock manager with deadlock detection.

Row-level shared/exclusive locks with FIFO wait queues.  Requests
never block the caller (our execution model is event-driven): a request
either is granted immediately or parks the transaction on the queue and
reports WAIT; the process scheduler retries when locks are released.

Deadlocks are detected eagerly on each blocked request by a wait-for
graph cycle search; the requester is the victim.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, wanted: LockMode) -> bool:
    return held is LockMode.SHARED and wanted is LockMode.SHARED


@dataclass
class _LockState:
    holders: Dict[int, LockMode] = field(default_factory=dict)
    queue: List[Tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Lock table keyed by arbitrary hashable resources."""

    def __init__(self) -> None:
        self._table: Dict[Hashable, _LockState] = defaultdict(_LockState)
        self._held_by_txn: Dict[int, Set[Hashable]] = defaultdict(set)
        self.grants = 0
        self.waits = 0
        self.deadlocks = 0

    # -- acquisition -----------------------------------------------------------

    def try_acquire(self, txn_id: int, resource: Hashable, mode: LockMode) -> bool:
        """Attempt to lock; True if granted, False if queued (WAIT).

        Raises DeadlockError (and does not queue) when waiting would
        close a cycle in the wait-for graph.
        """
        state = self._table[resource]
        held = state.holders.get(txn_id)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return True  # re-entrant / already stronger
            # Upgrade S -> X: allowed immediately iff sole holder and
            # nobody queued ahead.
            if len(state.holders) == 1 and not state.queue:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                self.grants += 1
                return True
            self._check_deadlock(txn_id, resource)
            state.queue.append((txn_id, mode))
            self.waits += 1
            return False
        if not state.queue and all(
            _compatible(m, mode) for m in state.holders.values()
        ):
            state.holders[txn_id] = mode
            self._held_by_txn[txn_id].add(resource)
            self.grants += 1
            return True
        if any(t == txn_id for t, _ in state.queue):
            return False  # already parked; keep waiting
        self._check_deadlock(txn_id, resource)
        state.queue.append((txn_id, mode))
        self.waits += 1
        return False

    def holds(self, txn_id: int, resource: Hashable) -> Optional[LockMode]:
        return self._table[resource].holders.get(txn_id)

    # -- release ---------------------------------------------------------------

    def release_all(self, txn_id: int) -> List[int]:
        """Drop every lock of a transaction; returns txn ids newly granted."""
        woken: List[int] = []
        for resource in list(self._held_by_txn.get(txn_id, ())):
            state = self._table[resource]
            state.holders.pop(txn_id, None)
            woken.extend(self._grant_from_queue(resource, state))
        self._held_by_txn.pop(txn_id, None)
        # Also cancel any waits this txn still had queued.
        for state in self._table.values():
            state.queue = [(t, m) for t, m in state.queue if t != txn_id]
        return woken

    def cancel_waits(self, txn_id: int) -> None:
        """Remove a transaction from all wait queues (on abort)."""
        for resource, state in self._table.items():
            before = len(state.queue)
            state.queue = [(t, m) for t, m in state.queue if t != txn_id]
            if len(state.queue) != before:
                self._grant_from_queue(resource, state)

    def _grant_from_queue(self, resource: Hashable, state: _LockState) -> List[int]:
        woken = []
        while state.queue:
            txn_id, mode = state.queue[0]
            if state.holders and not all(
                _compatible(m, mode) for m in state.holders.values()
            ):
                break
            state.queue.pop(0)
            state.holders[txn_id] = mode
            self._held_by_txn[txn_id].add(resource)
            self.grants += 1
            woken.append(txn_id)
            if mode is LockMode.EXCLUSIVE:
                break
        return woken

    # -- deadlock detection -------------------------------------------------------

    def _waits_for(self, txn_id: int, resource: Hashable) -> Set[int]:
        state = self._table[resource]
        blockers = {t for t in state.holders if t != txn_id}
        # FIFO queues: we also wait for everyone queued ahead of us.
        for queued, _mode in state.queue:
            if queued == txn_id:
                break
            blockers.add(queued)
        return blockers

    def _wait_target(self, txn_id: int) -> Optional[Hashable]:
        for resource, state in self._table.items():
            if any(t == txn_id for t, _ in state.queue):
                return resource
        return None

    def _check_deadlock(self, txn_id: int, resource: Hashable) -> None:
        """Raise DeadlockError if txn_id waiting on resource closes a cycle."""
        frontier = self._waits_for(txn_id, resource)
        visited: Set[int] = set()
        while frontier:
            blocker = frontier.pop()
            if blocker == txn_id:
                self.deadlocks += 1
                raise DeadlockError(
                    f"txn {txn_id} waiting on {resource!r} would deadlock"
                )
            if blocker in visited:
                continue
            visited.add(blocker)
            target = self._wait_target(blocker)
            if target is not None:
                frontier |= self._waits_for(blocker, target)

    # -- introspection ---------------------------------------------------------------

    def held_resources(self, txn_id: int) -> Set[Hashable]:
        return set(self._held_by_txn.get(txn_id, ()))

    def queue_length(self, resource: Hashable) -> int:
        return len(self._table[resource].queue)
