"""B+tree index over buffered pages.

Each node occupies one page, serialized as the page's single record.
Keys are signed 64-bit ints; leaf values are RIDs.  Leaves are linked
for ordered scans.  Deletion removes the key from its leaf without
rebalancing (adequate for the workloads here and a common production
simplification).
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import DatabaseError, DuplicateKeyError, KeyNotFoundError
from repro.db.storage import RID

_NODE_HEADER = struct.Struct("<BHI")  # is_leaf, nkeys, next_leaf
_KEY = struct.Struct("<q")
_LEAF_VAL = struct.Struct("<IH")  # page_id, slot
_CHILD = struct.Struct("<I")


@dataclass
class _Node:
    page_id: int
    is_leaf: bool
    keys: List[int] = field(default_factory=list)
    #: Leaf: RIDs parallel to keys.  Internal: child page ids, one more
    #: than keys (children[i] covers keys < keys[i]).
    values: List = field(default_factory=list)
    children: List[int] = field(default_factory=list)
    next_leaf: int = 0

    def to_bytes(self) -> bytes:
        parts = [
            _NODE_HEADER.pack(1 if self.is_leaf else 0, len(self.keys), self.next_leaf)
        ]
        parts.extend(_KEY.pack(k) for k in self.keys)
        if self.is_leaf:
            parts.extend(_LEAF_VAL.pack(*rid) for rid in self.values)
        else:
            parts.extend(_CHILD.pack(c) for c in self.children)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, page_id: int, data: bytes) -> "_Node":
        is_leaf, nkeys, next_leaf = _NODE_HEADER.unpack_from(data, 0)
        pos = _NODE_HEADER.size
        keys = []
        for _ in range(nkeys):
            keys.append(_KEY.unpack_from(data, pos)[0])
            pos += _KEY.size
        node = cls(page_id=page_id, is_leaf=bool(is_leaf), keys=keys, next_leaf=next_leaf)
        if node.is_leaf:
            for _ in range(nkeys):
                node.values.append(_LEAF_VAL.unpack_from(data, pos))
                pos += _LEAF_VAL.size
        else:
            for _ in range(nkeys + 1):
                node.children.append(_CHILD.unpack_from(data, pos)[0])
                pos += _CHILD.size
        return node


class BTree:
    """A B+tree index: int key -> RID."""

    def __init__(self, name: str, pool, order: int = 128) -> None:
        """Args:
        name: Index name (for diagnostics).
        pool: Buffer pool.
        order: Maximum keys per node before it splits.
        """
        if order < 4:
            raise DatabaseError(f"btree order must be >= 4, got {order}")
        self.name = name
        self.pool = pool
        self.order = order
        # Nodes are serialized at a fixed size (the worst case is a
        # transiently overfull node of order+1 keys) so in-place page
        # updates never need to relocate the cell.
        max_keys = order + 1
        leaf_max = _NODE_HEADER.size + max_keys * (_KEY.size + _LEAF_VAL.size)
        internal_max = _NODE_HEADER.size + max_keys * _KEY.size + (max_keys + 1) * _CHILD.size
        self._node_bytes = max(leaf_max, internal_max)
        from repro.db.pages import PAGE_SIZE, HEADER_SIZE, SLOT_SIZE

        if self._node_bytes > PAGE_SIZE - HEADER_SIZE - SLOT_SIZE:
            raise DatabaseError(
                f"btree order {order} needs {self._node_bytes}-byte nodes, "
                f"too large for one page"
            )
        root = _Node(page_id=0, is_leaf=True)
        page = pool.new_page()
        root.page_id = page.page_id
        page.insert(self._pack(root))
        pool.unpin(page.page_id, dirty=True)
        self.root_page_id = root.page_id
        self.height = 1
        #: Hook fired after each descent: f(levels_visited, found).
        self.on_descent: Optional[Callable[[int, bool], None]] = None

    # -- node I/O ------------------------------------------------------------

    def _pack(self, node: _Node) -> bytes:
        """Serialize a node padded to the fixed node size."""
        data = node.to_bytes()
        return data + b"\x00" * (self._node_bytes - len(data))

    def _load(self, page_id: int) -> _Node:
        page = self.pool.fetch(page_id)
        try:
            return _Node.from_bytes(page_id, page.read(0))
        finally:
            self.pool.unpin(page_id, dirty=False)

    def _save(self, node: _Node) -> None:
        page = self.pool.fetch(node.page_id)
        try:
            page.update(0, self._pack(node))
        finally:
            self.pool.unpin(node.page_id, dirty=True)

    def _new_node(self, is_leaf: bool) -> _Node:
        page = self.pool.new_page()
        node = _Node(page_id=page.page_id, is_leaf=is_leaf)
        page.insert(self._pack(node))
        self.pool.unpin(page.page_id, dirty=True)
        return node

    # -- search ----------------------------------------------------------------

    def search(self, key: int) -> Optional[RID]:
        """Point lookup; returns the RID or None."""
        node = self._load(self.root_page_id)
        levels = 1
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            node = self._load(node.children[idx])
            levels += 1
        idx = bisect_left(node.keys, key)
        found = idx < len(node.keys) and node.keys[idx] == key
        if self.on_descent is not None:
            self.on_descent(levels, found)
        return tuple(node.values[idx]) if found else None

    def lookup(self, key: int) -> RID:
        """Point lookup that raises on a miss."""
        rid = self.search(key)
        if rid is None:
            raise KeyNotFoundError(f"index {self.name!r}: key {key} not found")
        return rid

    # -- insert ------------------------------------------------------------------

    def insert(self, key: int, rid: RID) -> None:
        """Insert a unique key."""
        split = self._insert_into(self.root_page_id, key, rid)
        if split is not None:
            sep_key, right_pid = split
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self.root_page_id, right_pid]
            self._save(new_root)
            self.root_page_id = new_root.page_id
            self.height += 1

    def _insert_into(
        self, page_id: int, key: int, rid: RID
    ) -> Optional[Tuple[int, int]]:
        node = self._load(page_id)
        if node.is_leaf:
            idx = bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                raise DuplicateKeyError(f"index {self.name!r}: duplicate key {key}")
            node.keys.insert(idx, key)
            node.values.insert(idx, rid)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            self._save(node)
            return None
        idx = bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, rid)
        if split is None:
            return None
        sep_key, right_pid = split
        node.keys.insert(idx, sep_key)
        node.children.insert(idx + 1, right_pid)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        self._save(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        right.next_leaf = node.next_leaf
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        node.next_leaf = right.page_id
        self._save(right)
        self._save(node)
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> Tuple[int, int]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._save(right)
        self._save(node)
        return sep, right.page_id

    # -- delete --------------------------------------------------------------------

    def delete(self, key: int) -> None:
        """Remove a key from its leaf (no rebalancing)."""
        node = self._load(self.root_page_id)
        while not node.is_leaf:
            idx = bisect_right(node.keys, key)
            node = self._load(node.children[idx])
        idx = bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            raise KeyNotFoundError(f"index {self.name!r}: key {key} not found")
        node.keys.pop(idx)
        node.values.pop(idx)
        self._save(node)

    # -- scans ----------------------------------------------------------------------

    def range_search(self, lo: int, hi: int) -> List[tuple]:
        """All (key, rid) with lo <= key <= hi, in key order.

        Descends to the leaf covering ``lo`` and walks the leaf chain.
        """
        if hi < lo:
            return []
        node = self._load(self.root_page_id)
        while not node.is_leaf:
            idx = bisect_right(node.keys, lo)
            node = self._load(node.children[idx])
        out: List[tuple] = []
        while True:
            idx = bisect_left(node.keys, lo)
            for key, rid in zip(node.keys[idx:], node.values[idx:]):
                if key > hi:
                    return out
                out.append((key, tuple(rid)))
            if not node.next_leaf:
                return out
            node = self._load(node.next_leaf)

    def items(self):
        """Yield (key, rid) in key order."""
        node = self._load(self.root_page_id)
        while not node.is_leaf:
            node = self._load(node.children[0])
        while True:
            for key, rid in zip(node.keys, node.values):
                yield key, tuple(rid)
            if not node.next_leaf:
                return
            node = self._load(node.next_leaf)
