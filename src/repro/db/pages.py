"""Slotted pages: the on-"disk" unit of the mini DBMS.

A page is a fixed-size byte buffer with a header, a slot directory
growing from the front, and record cells growing from the back --
the classic heap-page organization.

Header layout (16 bytes):
    0:4   page id (uint32)
    4:12  page LSN (uint64) -- last log record that touched the page
    12:14 slot count (uint16)
    14:16 cell area start offset (uint16), grows downward
Each slot is 4 bytes: offset (uint16), length (uint16).  A deleted
record keeps its slot with offset 0 (tombstone) so RIDs stay stable.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional

from repro.errors import PageError

PAGE_SIZE = 8192
_HEADER = struct.Struct("<IQHH")
HEADER_SIZE = _HEADER.size
_SLOT = struct.Struct("<HH")
SLOT_SIZE = _SLOT.size
#: A tombstone slot: offset 0 can never hold a record (header lives there).
_TOMBSTONE = 0


class Page:
    """One slotted page."""

    def __init__(self, page_id: int, buf: Optional[bytearray] = None) -> None:
        if buf is None:
            self.buf = bytearray(PAGE_SIZE)
            self.page_id = page_id
            self.lsn = 0
            self._nslots = 0
            self._cell_start = PAGE_SIZE
            self._write_header()
        else:
            if len(buf) != PAGE_SIZE:
                raise PageError(
                    f"page {page_id}: buffer is {len(buf)} bytes, want {PAGE_SIZE}"
                )
            self.buf = bytearray(buf)
            pid, lsn, nslots, cell_start = _HEADER.unpack_from(self.buf, 0)
            if pid != page_id:
                raise PageError(f"buffer holds page {pid}, expected {page_id}")
            self.page_id = pid
            self.lsn = lsn
            self._nslots = nslots
            self._cell_start = cell_start

    # -- header ------------------------------------------------------------

    def _write_header(self) -> None:
        _HEADER.pack_into(
            self.buf, 0, self.page_id, self.lsn, self._nslots, self._cell_start
        )

    def set_lsn(self, lsn: int) -> None:
        """Stamp the page with the LSN of the log record covering it."""
        self.lsn = lsn
        self._write_header()

    # -- slot directory ----------------------------------------------------

    @property
    def nslots(self) -> int:
        return self._nslots

    def _slot(self, index: int) -> tuple:
        if not 0 <= index < self._nslots:
            raise PageError(f"page {self.page_id}: no slot {index}")
        return _SLOT.unpack_from(self.buf, HEADER_SIZE + index * SLOT_SIZE)

    def _set_slot(self, index: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.buf, HEADER_SIZE + index * SLOT_SIZE, offset, length)

    @property
    def free_space(self) -> int:
        """Bytes available for a new record (including its slot)."""
        slot_end = HEADER_SIZE + self._nslots * SLOT_SIZE
        return self._cell_start - slot_end

    def fits(self, record_len: int) -> bool:
        return self.free_space >= record_len + SLOT_SIZE

    # -- records -----------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record, returning its slot index."""
        if not record:
            raise PageError(f"page {self.page_id}: empty records not allowed")
        if not self.fits(len(record)):
            raise PageError(
                f"page {self.page_id}: record of {len(record)} bytes does not fit "
                f"({self.free_space} free)"
            )
        self._cell_start -= len(record)
        self.buf[self._cell_start : self._cell_start + len(record)] = record
        index = self._nslots
        self._nslots += 1
        self._set_slot(index, self._cell_start, len(record))
        self._write_header()
        return index

    def read(self, slot: int) -> bytes:
        """Read the record in a slot."""
        offset, length = self._slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"page {self.page_id}: slot {slot} is deleted")
        return bytes(self.buf[offset : offset + length])

    def update(self, slot: int, record: bytes) -> None:
        """Replace a record in place.

        Same-size updates overwrite the cell; smaller ones shrink it in
        place; larger ones relocate the cell to fresh space (the old
        cell becomes dead space until the page is rebuilt).
        """
        offset, length = self._slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"page {self.page_id}: slot {slot} is deleted")
        if len(record) <= length:
            self.buf[offset : offset + len(record)] = record
            self._set_slot(slot, offset, len(record))
        else:
            if self.free_space < len(record):
                raise PageError(
                    f"page {self.page_id}: cannot grow slot {slot} to "
                    f"{len(record)} bytes"
                )
            self._cell_start -= len(record)
            self.buf[self._cell_start : self._cell_start + len(record)] = record
            self._set_slot(slot, self._cell_start, len(record))
            self._write_header()

    def delete(self, slot: int) -> None:
        """Tombstone a slot (RIDs of other records stay valid)."""
        offset, _length = self._slot(slot)
        if offset == _TOMBSTONE:
            raise PageError(f"page {self.page_id}: slot {slot} already deleted")
        self._set_slot(slot, _TOMBSTONE, 0)

    def is_deleted(self, slot: int) -> bool:
        offset, _ = self._slot(slot)
        return offset == _TOMBSTONE

    def records(self) -> List[bytes]:
        """All live records, in slot order."""
        out = []
        for i in range(self._nslots):
            offset, length = self._slot(i)
            if offset != _TOMBSTONE:
                out.append(bytes(self.buf[offset : offset + length]))
        return out

    # -- persistence -------------------------------------------------------

    def to_bytes(self) -> bytes:
        self._write_header()
        return bytes(self.buf)

    def checksum(self) -> int:
        """CRC over the page image (header included)."""
        self._write_header()
        return zlib.crc32(self.buf)
