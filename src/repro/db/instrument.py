"""Instrumentation bridge: engine execution -> routine call events.

The execution model does not trace Python bytecode; instead the engine
emits a tree of :class:`CallEvent` describing which logical routines
ran, with *semantic bindings* (branch outcomes, loop trip counts) and
nested child calls.  The CFG interpreter later walks each routine's IR
using the bindings, producing the instruction-level address trace.

Event names starting with ``k.`` denote kernel entry points (syscalls,
handled by the OS model's binary); everything else is application code.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.db.buffer import BufferPool
from repro.db.storage import PageStore


class CallEvent:
    """One dynamic routine invocation."""

    __slots__ = ("name", "bindings", "children")

    def __init__(self, name: str, bindings: Optional[Dict] = None) -> None:
        self.name = name
        self.bindings: Dict = bindings or {}
        self.children: List["CallEvent"] = []

    def bind(self, **kwargs) -> None:
        """Attach/overwrite bindings (usually at op completion)."""
        self.bindings.update(kwargs)

    def find(self, name: str) -> List["CallEvent"]:
        """All descendant events with a given name (tests/debugging)."""
        out = []
        for child in self.children:
            if child.name == name:
                out.append(child)
            out.extend(child.find(name))
        return out

    def __repr__(self) -> str:
        return f"CallEvent({self.name!r}, {self.bindings}, {len(self.children)} kids)"


class CallTrace:
    """Records a tree of call events for one unit of work.

    The orchestrator drains the tree after each engine step (see
    :meth:`take`), so memory stays bounded no matter how long a run is.
    """

    def __init__(self) -> None:
        self.root = CallEvent("root")
        self._stack: List[CallEvent] = [self.root]
        self._salt = 0

    def _next_salt(self) -> int:
        # A cheap avalanche over an op counter; the CFG interpreter uses
        # the salt to resolve pseudo-random ("?p") branch conditions so
        # generated warm code takes data-dependent paths deterministically.
        self._salt += 1
        return (self._salt * 2654435761) & 0x7FFFFFFF

    @contextmanager
    def op(self, name: str, **bindings) -> Iterator[CallEvent]:
        """Record a nested routine invocation."""
        event = CallEvent(name, dict(bindings))
        event.bindings.setdefault("salt", self._next_salt())
        self._stack[-1].children.append(event)
        self._stack.append(event)
        try:
            yield event
        finally:
            self._stack.pop()

    def leaf(self, name: str, **bindings) -> CallEvent:
        """Record a call with no traced children."""
        event = CallEvent(name, dict(bindings))
        event.bindings.setdefault("salt", self._next_salt())
        self._stack[-1].children.append(event)
        return event

    def take(self) -> List[CallEvent]:
        """Detach and return the events recorded so far.

        Only valid between units of work (no op may be open).
        """
        if len(self._stack) != 1:
            raise RuntimeError("CallTrace.take() inside an open op")
        events = self.root.children
        self.root = CallEvent("root")
        self._stack = [self.root]
        return events


class NullTrace:
    """No-op tracer: the engine runs untraced (tests, bulk loads)."""

    @contextmanager
    def op(self, name: str, **bindings) -> Iterator[CallEvent]:
        yield _NULL_EVENT

    def leaf(self, name: str, **bindings) -> CallEvent:
        return _NULL_EVENT

    def take(self) -> List[CallEvent]:
        return []


class _NullEvent:
    __slots__ = ()

    def bind(self, **kwargs) -> None:
        pass


_NULL_EVENT = _NullEvent()


class TracedBufferPool(BufferPool):
    """Buffer pool that records ``buffer_get`` events on every fetch.

    Physical reads triggered by misses surface as ``k.read`` children
    (wired through the store's ``on_read`` hook by :func:`traced_store`).
    """

    def __init__(self, store: PageStore, capacity: int, trace) -> None:
        super().__init__(store, capacity)
        self.trace = trace

    def fetch(self, page_id: int):
        hit = self.contains(page_id)
        with self.trace.op("buffer_get", hit=hit) as ev:
            writes_before = self.store.writes
            page = super().fetch(page_id)
            ev.bind(wrote_back=self.store.writes > writes_before)
        return page

    def new_page(self):
        with self.trace.op("buffer_new", hit=False) as ev:
            writes_before = self.store.writes
            page = super().new_page()
            ev.bind(wrote_back=self.store.writes > writes_before)
        return page


def traced_store(store: PageStore, trace) -> PageStore:
    """Wire a page store's I/O hooks to kernel-call events."""
    store.on_read = lambda page_id: trace.leaf("k.read", pages=1)
    store.on_write = lambda page_id: trace.leaf("k.write", pages=1)
    return store
