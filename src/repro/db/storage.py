"""The "disk": a page store, plus heap files built on it.

The :class:`PageStore` keeps serialized page images and exposes
read/write with I/O notification hooks -- the hooks are how disk
traffic turns into kernel activity in the full-system model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import PageError
from repro.db.pages import PAGE_SIZE, Page

#: Record id: (page_id, slot).
RID = Tuple[int, int]


class PageStore:
    """Backing store of page images, addressed by page id."""

    def __init__(self) -> None:
        self._images: Dict[int, bytes] = {}
        self._next_page_id = 1  # page id 0 reserved as "invalid"
        self.reads = 0
        self.writes = 0
        #: Optional hooks fired on physical I/O: f(page_id).
        self.on_read: Optional[Callable[[int], None]] = None
        self.on_write: Optional[Callable[[int], None]] = None

    def allocate(self) -> Page:
        """Allocate a fresh page (already persisted, empty)."""
        page = Page(self._next_page_id)
        self._next_page_id += 1
        self._images[page.page_id] = page.to_bytes()
        return page

    def read(self, page_id: int) -> Page:
        """Read a page image from the store."""
        try:
            image = self._images[page_id]
        except KeyError:
            raise PageError(f"no such page: {page_id}") from None
        self.reads += 1
        if self.on_read is not None:
            self.on_read(page_id)
        return Page(page_id, bytearray(image))

    def write(self, page: Page) -> None:
        """Write a page image back to the store."""
        if page.page_id not in self._images:
            raise PageError(f"writing unallocated page {page.page_id}")
        self._images[page.page_id] = page.to_bytes()
        self.writes += 1
        if self.on_write is not None:
            self.on_write(page.page_id)

    @property
    def num_pages(self) -> int:
        return len(self._images)

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE


class HeapFile:
    """An unordered collection of records over buffered pages.

    All page access goes through a buffer pool (duck-typed: needs
    ``fetch(page_id)``, ``unpin(page_id, dirty)``, ``new_page()``).
    """

    def __init__(self, name: str, pool) -> None:
        self.name = name
        self.pool = pool
        self.page_ids: List[int] = []
        #: Last page we inserted into -- the common fast path for
        #: append-mostly tables like TPC-B's history.
        self._insert_hint: Optional[int] = None

    def insert(self, record: bytes) -> RID:
        """Insert a record, returning its RID."""
        if self._insert_hint is not None:
            page = self.pool.fetch(self._insert_hint)
            if page.fits(len(record)):
                slot = page.insert(record)
                self.pool.unpin(page.page_id, dirty=True)
                return (page.page_id, slot)
            self.pool.unpin(page.page_id, dirty=False)
        page = self.pool.new_page()
        self.page_ids.append(page.page_id)
        self._insert_hint = page.page_id
        slot = page.insert(record)
        self.pool.unpin(page.page_id, dirty=True)
        return (page.page_id, slot)

    def read(self, rid: RID) -> bytes:
        """Read the record at a RID."""
        page = self.pool.fetch(rid[0])
        try:
            return page.read(rid[1])
        finally:
            self.pool.unpin(rid[0], dirty=False)

    def update(self, rid: RID, record: bytes) -> None:
        """Overwrite the record at a RID."""
        page = self.pool.fetch(rid[0])
        try:
            page.update(rid[1], record)
        finally:
            self.pool.unpin(rid[0], dirty=True)

    def delete(self, rid: RID) -> None:
        """Delete the record at a RID."""
        page = self.pool.fetch(rid[0])
        try:
            page.delete(rid[1])
        finally:
            self.pool.unpin(rid[0], dirty=True)

    def scan(self):
        """Yield (rid, record) for every live record."""
        for page_id in self.page_ids:
            page = self.pool.fetch(page_id)
            try:
                for slot in range(page.nslots):
                    if not page.is_deleted(slot):
                        yield (page_id, slot), page.read(slot)
            finally:
                self.pool.unpin(page_id, dirty=False)

    @property
    def num_records(self) -> int:
        return sum(1 for _ in self.scan())
