"""The database engine facade: the "Oracle server process" of the model.

Exposes key-based reads, updates and inserts under strict 2PL with WAL
durability.  Every operation emits routine call events through the
instrumentation trace (a no-op by default), which the execution model
expands into instruction traces.

Lock waits are surfaced as the :class:`LockWait` control-flow signal:
operations acquire all their locks *first*, so a waiting operation has
performed no other work and can simply be retried once the scheduler
wakes the process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.errors import DatabaseError, DeadlockError, KeyNotFoundError
from repro.db.btree import BTree
from repro.db.buffer import BufferPool
from repro.db.instrument import NullTrace, TracedBufferPool, traced_store
from repro.db.lock import LockManager, LockMode
from repro.db.rows import Column, RowCodec
from repro.db.storage import HeapFile, PageStore, RID
from repro.db.txn import Transaction, TransactionManager, UndoEntry
from repro.db.wal import LogKind, LogManager


class LockWait(Exception):
    """Control-flow signal: the operation is parked on a lock queue.

    Not an error -- the scheduler retries the operation after the
    holding transaction releases its locks.
    """

    def __init__(self, resource: Hashable) -> None:
        super().__init__(f"waiting for lock on {resource!r}")
        self.resource = resource


@dataclass
class Table:
    """A stored table: heap file, codec, optional unique index."""

    name: str
    codec: RowCodec
    heap: HeapFile
    key_column: str
    index: Optional[BTree] = None


class Engine:
    """The mini-DBMS."""

    def __init__(
        self,
        pool_capacity: int = 512,
        btree_order: int = 128,
        trace=None,
    ) -> None:
        self.trace = trace if trace is not None else NullTrace()
        self.store = traced_store(PageStore(), self.trace)
        self.pool = TracedBufferPool(self.store, pool_capacity, self.trace)
        self.log = LogManager()
        self.log.on_flush = self._on_log_flush
        self.locks = LockManager()
        self.txns = TransactionManager(self.log, self.locks)
        self.tables: Dict[str, Table] = {}
        self._btree_order = btree_order
        self._stmt_cache: set = set()

    # -- schema ------------------------------------------------------------

    def create_table(
        self, name: str, columns: Sequence[Column], key_column: str, indexed: bool = True
    ) -> Table:
        """Create a table (and a unique B+tree index on its key)."""
        if name in self.tables:
            raise DatabaseError(f"table {name!r} already exists")
        codec = RowCodec(name, columns)
        if indexed and key_column not in codec.int_columns:
            raise DatabaseError(f"table {name!r}: key column {key_column!r} not an int")
        table = Table(
            name=name,
            codec=codec,
            heap=HeapFile(name, self.pool),
            key_column=key_column,
            index=BTree(f"{name}_pk", self.pool, self._btree_order) if indexed else None,
        )
        self.tables[name] = table
        return table

    def _table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise DatabaseError(f"no such table: {name!r}") from None

    # -- bulk load (no txn, no locks, no logging) ---------------------------

    def load_row(self, table_name: str, row: Dict[str, int]) -> RID:
        """Bulk-load one row (schema setup / database population)."""
        table = self._table(table_name)
        rid = table.heap.insert(table.codec.encode(row))
        if table.index is not None:
            table.index.insert(row[table.key_column], rid)
        return rid

    def checkpoint(self) -> int:
        """Flush dirty pages and the log; returns pages written."""
        written = self.pool.flush_all()
        self.log.flush()
        return written

    # -- transactions --------------------------------------------------------

    def begin(self) -> Transaction:
        with self.trace.op("txn_begin"):
            return self.txns.begin()

    def commit(self, txn: Transaction) -> List[int]:
        """Commit; returns txn ids woken by the lock release."""
        nlocks = len(self.locks.held_resources(txn.txn_id))
        with self.trace.op("txn_commit", nlocks=nlocks) as ev:
            flushes_before = self.log.flushes
            woken = self.txns.commit(txn)
            ev.bind(flushed=self.log.flushes > flushes_before)
            return woken

    def abort(self, txn: Transaction) -> List[int]:
        with self.trace.op("txn_abort", nundo=len(txn.undo)):
            return self.txns.abort(txn, self._apply_undo)

    def _apply_undo(self, entry: UndoEntry) -> None:
        table = self._table(entry.table)
        if entry.kind is LogKind.UPDATE:
            table.heap.update(entry.rid, entry.before)
        elif entry.kind is LogKind.INSERT:
            table.heap.delete(entry.rid)
            if table.index is not None:
                row = table.codec.decode(entry.before)
                try:
                    table.index.delete(row[table.key_column])
                except KeyNotFoundError:
                    pass  # the failing index insert never landed
        else:
            raise DatabaseError(f"cannot undo log kind {entry.kind}")

    # -- reads -----------------------------------------------------------------

    def get_row(
        self,
        txn: Transaction,
        table_name: str,
        key: int,
        for_update: bool = False,
    ) -> Dict[str, int]:
        """Point select by key, locking the row (S, or X for update)."""
        txn.require_active()
        table = self._table(table_name)
        with self.trace.op("sql_select", table=table_name, waited=False, ok=False) as ev:
            self._stmt_lookup("select", table_name)
            mode = LockMode.EXCLUSIVE if for_update else LockMode.SHARED
            try:
                self._lock(txn, table_name, key, mode)
            except LockWait:
                ev.bind(waited=True)
                raise
            rid = self._index_lookup(table, key)
            row = self._row_fetch(table, rid)
            ev.bind(ok=True)
            return row

    def scan_rows(
        self,
        txn: Transaction,
        table_name: str,
        where: Optional[Callable[[Dict[str, int]], bool]] = None,
    ) -> List[Dict[str, int]]:
        """Full table scan (read-only; no row locks -- scans run at
        read-committed isolation like a DSS query).

        Returns the matching rows; the traced ``sql_scan`` event binds
        the page and row counts the scan touched.
        """
        txn.require_active()
        table = self._table(table_name)
        with self.trace.op("sql_scan", table=table_name, pages=0, rows=0) as ev:
            self._stmt_lookup("scan", table_name)
            rows = []
            scanned = 0
            for _rid, data in table.heap.scan():
                scanned += 1
                row = table.codec.decode(data)
                if where is None or where(row):
                    rows.append(row)
            ev.bind(pages=len(table.heap.page_ids), rows=scanned)
        return rows

    def range_rows(
        self, txn: Transaction, table_name: str, lo: int, hi: int
    ) -> List[Dict[str, int]]:
        """Index range scan: rows with lo <= key <= hi, in key order.

        Read-only (no row locks), like :meth:`scan_rows`.
        """
        txn.require_active()
        table = self._table(table_name)
        if table.index is None:
            raise DatabaseError(f"table {table_name!r} has no index")
        with self.trace.op("index_scan", table=table_name, rows=0) as ev:
            self._stmt_lookup("range", table_name)
            pairs = table.index.range_search(lo, hi)
            rows = [table.codec.decode(table.heap.read(rid)) for _k, rid in pairs]
            ev.bind(rows=len(rows))
        return rows

    # -- updates ------------------------------------------------------------------

    def update_row(
        self,
        txn: Transaction,
        table_name: str,
        key: int,
        deltas: Optional[Dict[str, int]] = None,
        values: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Update a row by key: apply ``deltas`` (+=) and ``values`` (=).

        Returns the new row image.  May raise :class:`LockWait`.
        """
        txn.require_active()
        table = self._table(table_name)
        with self.trace.op("sql_update", table=table_name, waited=False, ok=False) as ev:
            self._stmt_lookup("update", table_name)
            try:
                self._lock(txn, table_name, key, LockMode.EXCLUSIVE)
            except LockWait:
                ev.bind(waited=True)
                raise
            rid = self._index_lookup(table, key)
            row = self._row_fetch(table, rid)
            before = table.codec.encode(row)
            for column, delta in (deltas or {}).items():
                row[column] = row.get(column, 0) + delta
            for column, value in (values or {}).items():
                row[column] = value
            after = table.codec.encode(row)
            self._row_update(txn, table, rid, before, after)
            ev.bind(ok=True)
        return row

    def insert_row(self, txn: Transaction, table_name: str, row: Dict[str, int]) -> RID:
        """Insert a row (appends to the heap; updates the index if any)."""
        txn.require_active()
        table = self._table(table_name)
        with self.trace.op("sql_insert", table=table_name, ok=False) as outer:
            self._stmt_lookup("insert", table_name)
            data = table.codec.encode(row)
            with self.trace.op("heap_insert", table=table_name):
                rid = table.heap.insert(data)
            # Undo entry registered before the index insert so a
            # duplicate-key failure leaves no orphan heap record after
            # the caller aborts.
            txn.undo.append(
                UndoEntry(table=table.name, rid=rid, kind=LogKind.INSERT, before=data)
            )
            if table.index is not None:
                with self.trace.op("index_insert", table=table_name, depth=table.index.height):
                    table.index.insert(row[table.key_column], rid)
            lsn = self._wal_append(
                txn, LogKind.INSERT, table.name, rid, before=b"", after=data
            )
            self._stamp(rid, lsn)
            outer.bind(ok=True)
        return rid

    # -- internals -------------------------------------------------------------------

    def _stmt_lookup(self, op: str, table_name: str) -> None:
        """Statement-cache probe; a miss runs the (expensive) parser."""
        key = (op, table_name)
        hit = key in self._stmt_cache
        with self.trace.op("stmt_lookup", hit=hit):
            if not hit:
                self._stmt_cache.add(key)
                self.trace.leaf("sql_parse", tokens=8 + 2 * len(table_name) // 3)
        with self.trace.op("plan_bind", table=table_name):
            pass

    def _lock(self, txn: Transaction, table_name: str, key: int, mode: LockMode) -> None:
        resource = (table_name, key)
        with self.trace.op("lock_acquire", mode=mode.value) as ev:
            try:
                granted = self.locks.try_acquire(txn.txn_id, resource, mode)
            except DeadlockError:
                ev.bind(waited=False, deadlock=True)
                raise
            ev.bind(waited=not granted, deadlock=False)
            if not granted:
                self.trace.leaf("k.yield")
                raise LockWait(resource)

    def _index_lookup(self, table: Table, key: int) -> RID:
        if table.index is None:
            raise DatabaseError(f"table {table.name!r} has no index")
        with self.trace.op("btree_lookup", table=table.name, depth=table.index.height) as ev:
            try:
                rid = table.index.lookup(key)
            except KeyNotFoundError:
                ev.bind(found=False)
                raise
            ev.bind(found=True)
            return rid

    def _row_fetch(self, table: Table, rid: RID) -> Dict[str, int]:
        with self.trace.op("row_fetch", table=table.name):
            return table.codec.decode(table.heap.read(rid))

    def _row_update(
        self, txn: Transaction, table: Table, rid: RID, before: bytes, after: bytes
    ) -> None:
        with self.trace.op("row_update", table=table.name):
            table.heap.update(rid, after)
            lsn = self._wal_append(txn, LogKind.UPDATE, table.name, rid, before, after)
            self._stamp(rid, lsn)
            txn.undo.append(
                UndoEntry(table=table.name, rid=rid, kind=LogKind.UPDATE, before=before)
            )

    def _stamp(self, rid: RID, lsn: int) -> None:
        """Stamp the page holding ``rid`` with a log record's LSN."""
        page = self.pool.fetch(rid[0])
        try:
            page.set_lsn(lsn)
        finally:
            self.pool.unpin(rid[0], dirty=True)

    def _wal_append(
        self,
        txn: Transaction,
        kind: LogKind,
        table_name: str,
        rid: RID,
        before: bytes,
        after: bytes,
    ) -> int:
        lsn = self.log.append(
            txn.txn_id, kind, table=table_name, rid=rid, before=before, after=after
        )
        words = (32 + len(before) + len(after)) // 64 + 1
        with self.trace.op("wal_append", chunks=words):
            pass
        txn.last_lsn = lsn
        return lsn

    def _on_log_flush(self, nbytes: int) -> None:
        with self.trace.op("wal_flush", chunks=nbytes // 256 + 1):
            self.trace.leaf("k.write", pages=1)

    # -- convenience for standalone use -----------------------------------------------

    def run_transaction(self, work: Callable[[Transaction], None]) -> Transaction:
        """Run ``work`` in a fresh transaction, committing on success.

        Retries are NOT handled here: in single-threaded standalone use
        there is nobody to conflict with, so LockWait is a logic error.
        """
        txn = self.begin()
        try:
            work(txn)
        except Exception:
            self.abort(txn)
            raise
        self.commit(txn)
        return txn
