"""Fixed-schema row codecs (struct-based serialization)."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.errors import DatabaseError


@dataclass(frozen=True)
class Column:
    """A column: 64-bit int or fixed-width padding bytes."""

    name: str
    kind: str  # "int" | "pad"
    width: int = 8  # bytes; ints are always 8


class RowCodec:
    """Serialize/deserialize dict rows against a fixed schema."""

    def __init__(self, table: str, columns: Sequence[Column]) -> None:
        self.table = table
        self.columns = list(columns)
        fmt = "<"
        for col in self.columns:
            if col.kind == "int":
                fmt += "q"
            elif col.kind == "pad":
                fmt += f"{col.width}s"
            else:
                raise DatabaseError(f"{table}: unknown column kind {col.kind!r}")
        self._struct = struct.Struct(fmt)
        self.int_columns = [c.name for c in self.columns if c.kind == "int"]

    @property
    def row_size(self) -> int:
        return self._struct.size

    def encode(self, row: Dict[str, int]) -> bytes:
        values = []
        for col in self.columns:
            if col.kind == "int":
                try:
                    values.append(row[col.name])
                except KeyError:
                    raise DatabaseError(
                        f"{self.table}: row missing column {col.name!r}"
                    ) from None
            else:
                values.append(b"\x00" * col.width)
        return self._struct.pack(*values)

    def decode(self, data: bytes) -> Dict[str, int]:
        try:
            values = self._struct.unpack(data)
        except struct.error as exc:
            raise DatabaseError(f"{self.table}: cannot decode row: {exc}") from None
        row = {}
        for col, value in zip(self.columns, values):
            if col.kind == "int":
                row[col.name] = value
        return row


def int_col(name: str) -> Column:
    return Column(name=name, kind="int")


def pad_col(name: str, width: int) -> Column:
    return Column(name=name, kind="pad", width=width)
