"""Profile-source benchmark (``repro static-bench``).

Quantifies how much of the measured-profile layout win the profile-free
static prediction (:mod:`repro.staticpred`) recovers.  Each selected
scenario cell is simulated four times on the shared pipeline cache --
the ``base`` identity layout plus the cell's combo built from each
profile source (``measured``, ``static``, ``hybrid``) -- and the miss
reductions are compared:

    recovery(source) = base_misses - misses(source)
    ratio(source)    = recovery(source) / recovery(measured)

The acceptance gate is the paper-motivated floor from ``ISSUE.md``:
static-only layouts must recover at least half of the measured-profile
miss reduction, averaged over the OLTP-family cells
(:data:`GATE_MIN_RATIO`).  The gate and the per-cell recovery
percentages land in ``BENCH_staticpred.json`` so ``repro bench-diff``
catches a heuristic regression as a pass-to-fail flip or a recovery
drop beyond the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ScenarioError
from repro.harness.store import ArtifactStore
from repro.scenarios.matrix import _experiment_for, _simulate_misses
from repro.scenarios.spec import ScenarioSpec
from repro.staticpred import PROFILE_SOURCES

#: The acceptance gate: the mean static/measured recovery ratio over
#: the OLTP-family cells must stay at or above this floor.
GATE_MIN_RATIO = 0.5

#: Default cells: the no-drift OLTP pair from the built-in matrix
#: (direct-mapped batched cell + 2-way classic cell).
DEFAULT_CELLS = ("tpcb-i32", "tpcb-i64x2")


@dataclass
class SourceCell:
    """One scenario cell simulated under every profile source."""

    name: str
    family: str
    base_misses: int
    #: profile source -> L1I misses of the optimized layout.
    misses: Dict[str, int]

    def recovery(self, source: str) -> int:
        """Misses removed relative to the ``base`` identity layout."""
        return self.base_misses - self.misses[source]

    def ratio(self, source: str) -> float:
        """Recovery relative to the measured-profile recovery."""
        measured = self.recovery("measured")
        if measured <= 0:
            # Degenerate cell: the measured layout did not help, so any
            # source matching (or beating) it gets full credit.
            return 1.0 if self.recovery(source) >= measured else 0.0
        return self.recovery(source) / measured


@dataclass
class StaticBenchResult:
    """All cells plus the OLTP static-recovery gate."""

    cells: List[SourceCell]

    def _oltp(self) -> List[SourceCell]:
        return [c for c in self.cells if c.family == "oltp"] or self.cells

    @property
    def gate_ratio(self) -> float:
        """Mean static/measured recovery ratio over the OLTP cells."""
        oltp = self._oltp()
        return sum(c.ratio("static") for c in oltp) / len(oltp)

    def passes(self) -> bool:
        """True when static recovery clears :data:`GATE_MIN_RATIO`."""
        return self.gate_ratio >= GATE_MIN_RATIO

    def to_table(self):
        """The ``BENCH_staticpred`` table (see ``repro bench-diff``).

        Rows carry recovery *percentages of base misses* (stable under
        the content-addressed pipeline, so bench-diff can gate them)
        plus the boolean gate row whose pass-to-fail flip reads as a
        -100% regression.  The value column is named ``recovered_pct``
        on purpose: bench-diff keys the better-direction off the column
        name, and ``recovered`` marks it higher-is-better.
        """
        from repro.harness.figures import Table

        rows = []
        for cell in self.cells:
            for source in PROFILE_SOURCES:
                rows.append([
                    f"{cell.name}_{source}",
                    round(
                        100.0 * cell.recovery(source)
                        / max(1, cell.base_misses),
                        2,
                    ),
                ])
        rows.append([
            "oltp_static_vs_measured",
            round(100.0 * self.gate_ratio, 2),
        ])
        rows.append(["oltp_static_gate_ok", int(self.passes())])
        return Table(
            title="static-bench: layout quality by profile source",
            columns=["metric", "recovered_pct"],
            rows=rows,
            notes=[
                f"{c.name}: base {c.base_misses:,} misses; "
                + ", ".join(
                    f"{s} {c.misses[s]:,} (ratio {c.ratio(s):.3f})"
                    for s in PROFILE_SOURCES
                )
                for c in self.cells
            ] + [
                f"gate: mean OLTP static/measured recovery ratio "
                f"{self.gate_ratio:.3f} must be >= {GATE_MIN_RATIO:g}",
            ],
        )


def run_static_bench(
    specs: Sequence[ScenarioSpec],
    *,
    store: Optional[ArtifactStore] = None,
    jobs: int = 1,
) -> StaticBenchResult:
    """Simulate every spec under all of :data:`PROFILE_SOURCES`.

    Cells share the figure commands' content-addressed pipeline cache
    through the same :func:`~repro.scenarios.matrix._experiment_for`
    memo the matrix runner uses, so a warm cache answers everything but
    the static/hybrid layout builds instantly.
    """
    specs = [spec.validate() for spec in specs]
    if not specs:
        raise ScenarioError("static-bench needs at least one scenario")
    cells: List[SourceCell] = []
    for spec in specs:
        exp = _experiment_for(spec, store)
        exp.jobs = jobs
        base = _simulate_misses(spec, exp.streams("base", scope=spec.scope))
        misses = {
            source: _simulate_misses(
                spec,
                exp.streams(
                    spec.combo, scope=spec.scope, profile_source=source
                ),
            )
            for source in PROFILE_SOURCES
        }
        cells.append(
            SourceCell(
                name=spec.name,
                family=spec.workload.family,
                base_misses=base,
                misses=misses,
            )
        )
    return StaticBenchResult(cells)
