"""Cross-scenario Markdown report.

:func:`render_scenarios_report` turns a ``BENCH_scenarios`` document
(the dict from :meth:`~repro.scenarios.matrix.MatrixResult.to_document`
or the JSON loaded back from disk — same shape) into the Markdown
report the paper's evaluation section corresponds to: a per-cell MPKI
recovery table, the workload-family sensitivity ranking, and the
OLTP-vs-DSS verdict line.

Rendering from the *document* rather than live objects is deliberate:
``repro scenarios report DIR`` regenerates the report from a saved
``BENCH_scenarios.json`` without re-running anything, and the golden
test pins the exact output byte for byte.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _markdown_table(columns: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "|" + "|".join(" --- " for _ in columns) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return lines


def render_scenarios_report(document: Dict) -> str:
    """The cross-scenario Markdown report for one matrix document."""
    cells = document.get("cells", [])
    families = document.get("families", [])
    failed = [c for c in cells if c.get("status") == "failed"]
    lines: List[str] = ["# Scenario matrix report", ""]
    run = document.get("run", {})
    if run.get("id"):
        lines.append(f"Run `{run['id']}` at {run.get('timestamp', '?')}.")
        lines.append("")
    lines.append(
        f"{len(cells)} cells: "
        f"{sum(1 for c in cells if c.get('status') == 'simulated')} "
        f"simulated, "
        f"{sum(1 for c in cells if c.get('status') == 'cached')} resumed "
        f"from cache, {len(failed)} failed."
    )
    lines.append("")

    lines.append("## Per-cell MPKI recovery")
    lines.append("")
    rows = [
        [
            c["name"], c["family"], c["hierarchy"], c["engine"], c["drift"],
            f"{c['base_mpki']:.3f}", f"{c['opt_mpki']:.3f}",
            f"{c['recovery_pct']:.1f}",
            "yes" if c.get("gate_ok") else "NO",
        ]
        for c in cells
        if c.get("status") != "failed"
    ]
    lines.extend(_markdown_table(
        ["scenario", "family", "hierarchy", "engine", "drift",
         "base MPKI", "opt MPKI", "recovered %", "gate"],
        rows,
    ))
    lines.append("")

    if failed:
        lines.append("## Failed cells")
        lines.append("")
        for cell in failed:
            lines.append(f"- `{cell['name']}`: {cell.get('error', '?')}")
        lines.append("")

    lines.append("## Workload-family sensitivity")
    lines.append("")
    lines.append(
        "Mean L1I MPKI recovered by the full optimization combo, per "
        "workload family (drifted cells excluded), most "
        "layout-sensitive first:"
    )
    lines.append("")
    lines.extend(_markdown_table(
        ["rank", "family", "recovered MPKI", "recovered %", "cells"],
        [
            [rank, f["family"], f"{f['mean_recovered_mpki']:.2f}",
             f"{f['mean_recovery_pct']:.1f}", f["cells"]]
            for rank, f in enumerate(families, start=1)
        ],
    ))
    lines.append("")

    means = {f["family"]: f["mean_recovered_mpki"] for f in families}
    if "oltp" in means and "dss" in means:
        if document.get("ordering_ok", means["oltp"] > means["dss"]):
            lines.append(
                f"**Verdict:** consistent with the paper — layout "
                f"optimization recovers {means['oltp']:.2f} MPKI on OLTP "
                f"vs {means['dss']:.2f} MPKI on DSS; the sprawling OLTP "
                "instruction footprint is where code layout matters, "
                "while loop-bound DSS code is comparatively insensitive."
            )
        else:
            lines.append(
                f"**Verdict:** INCONSISTENT with the paper — DSS "
                f"({means['dss']:.2f} MPKI) recovered at least as much "
                f"as OLTP ({means['oltp']:.2f} MPKI); investigate "
                "before trusting this matrix."
            )
        lines.append("")
    return "\n".join(lines)
