"""Seeded synthetic OLTP workload: a Markov walk over engine procedures.

TPC-B and the DSS queries pin the reproduction to two fixed points of
the workload space.  The paper's conclusions, though, are claims about
*families* — OLTP's sprawling update path recovers most of its
instruction-cache misses under layout optimization, while loop-bound
DSS code is comparatively insensitive — and cross-family evidence
needs workloads whose instruction footprint and locality can be
*dialed*, not hand-written.

:class:`SyntheticWorkload` is that dial.  Each client issues
transactions whose operations are drawn from a first-order Markov
chain over the engine's entry procedures (point read, balance update,
history insert, teller scan, B+tree range scan).  The transition
matrix is the workload's *call-graph shape*: the ``oltp`` preset walks
the wide update/insert/commit path, the ``scan`` preset stays inside
the tight aggregation loops, and a custom matrix interpolates between
them.  Orthogonal knobs control:

* **procedure count** — the ``ops`` vocabulary restricts which engine
  procedures the chain may visit, shrinking or growing the dynamic
  instruction footprint;
* **hot-set skew** — accounts are drawn from a small hot set with
  probability ``hot_probability`` (and uniformly otherwise), dialing
  data locality and lock contention;
* **loop depth** — ``ops_per_txn`` operations execute per transaction
  between ``begin`` and ``commit``;
* **phase-shift schedule** — ``phases`` switches the transition
  matrix after a per-client transaction budget, reproducing the
  drift that :mod:`repro.online` adapts to.

Everything is seeded: two workloads built from equal configs produce
identical transaction streams, so scenario cells stay cacheable by
fingerprint.  The workload plugs into
:class:`~repro.execution.mp.OltpSystem` through the same
``load(engine)`` / ``client(pid)`` protocol as TPC-B and DSS.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.db import Engine
from repro.db.txn import Transaction
from repro.errors import WorkloadError
from repro.workloads.tpcb import TpcbConfig, load_database

#: Every engine procedure the Markov chain may visit, in canonical
#: order: point index read, balance update, history insert, filtered
#: teller scan, B+tree leaf-chain range aggregation.
OP_KINDS = ("read", "update", "insert", "scan", "range")

#: Named transition matrices (rows sum to 1 over :data:`OP_KINDS`).
#: ``oltp`` walks the update/insert path the paper measures; ``scan``
#: stays in the DSS-style aggregation loops; ``mixed`` interpolates.
MIX_PRESETS: Dict[str, Dict[str, Dict[str, float]]] = {
    "oltp": {
        "read":   {"read": 0.25, "update": 0.45, "insert": 0.20, "scan": 0.05, "range": 0.05},
        "update": {"read": 0.30, "update": 0.30, "insert": 0.30, "scan": 0.05, "range": 0.05},
        "insert": {"read": 0.45, "update": 0.40, "insert": 0.05, "scan": 0.05, "range": 0.05},
        "scan":   {"read": 0.45, "update": 0.45, "insert": 0.10, "scan": 0.00, "range": 0.00},
        "range":  {"read": 0.45, "update": 0.45, "insert": 0.10, "scan": 0.00, "range": 0.00},
    },
    "scan": {
        "read":   {"read": 0.10, "update": 0.00, "insert": 0.00, "scan": 0.45, "range": 0.45},
        "update": {"read": 0.10, "update": 0.00, "insert": 0.00, "scan": 0.45, "range": 0.45},
        "insert": {"read": 0.10, "update": 0.00, "insert": 0.00, "scan": 0.45, "range": 0.45},
        "scan":   {"read": 0.05, "update": 0.00, "insert": 0.00, "scan": 0.45, "range": 0.50},
        "range":  {"read": 0.05, "update": 0.00, "insert": 0.00, "scan": 0.50, "range": 0.45},
    },
    "mixed": {
        "read":   {"read": 0.20, "update": 0.25, "insert": 0.10, "scan": 0.20, "range": 0.25},
        "update": {"read": 0.20, "update": 0.20, "insert": 0.20, "scan": 0.20, "range": 0.20},
        "insert": {"read": 0.25, "update": 0.25, "insert": 0.05, "scan": 0.20, "range": 0.25},
        "scan":   {"read": 0.25, "update": 0.25, "insert": 0.10, "scan": 0.15, "range": 0.25},
        "range":  {"read": 0.25, "update": 0.25, "insert": 0.10, "scan": 0.25, "range": 0.15},
    },
}


@dataclass(frozen=True)
class SynthPhase:
    """One stretch of the synthetic schedule: a mix preset plus the
    per-client transaction budget before the next phase (0 = run
    forever; only valid for the final phase)."""

    mix: str
    transactions: int = 0

    def __post_init__(self) -> None:
        if self.mix not in MIX_PRESETS:
            raise WorkloadError(
                f"unknown synthetic mix {self.mix!r}; valid mixes: "
                f"{', '.join(sorted(MIX_PRESETS))}"
            )
        if self.transactions < 0:
            raise WorkloadError(
                f"synthetic phase {self.mix!r}: negative transaction count"
            )


@dataclass
class SyntheticConfig:
    """The synthetic generator's knobs (see the module docstring)."""

    #: Schema/scale of the underlying database (shared with TPC-B).
    tpcb: Optional[TpcbConfig] = None
    seed: int = 77
    #: Loop depth: operations per transaction between begin and commit.
    ops_per_txn: int = 4
    #: Hot-set size as a fraction of the account table.
    hot_fraction: float = 0.05
    #: Probability a key access lands in the hot set (the skew dial).
    hot_probability: float = 0.75
    #: Procedure vocabulary: which engine entry points the Markov
    #: chain may visit.  Shrinking it shrinks the dynamic footprint.
    ops: Tuple[str, ...] = OP_KINDS
    #: Phase-shift schedule of mix presets.
    phases: Tuple[SynthPhase, ...] = (SynthPhase("oltp", 0),)

    def __post_init__(self) -> None:
        if self.tpcb is None:
            self.tpcb = TpcbConfig()
        if self.ops_per_txn < 1:
            raise WorkloadError(
                f"ops_per_txn must be >= 1, got {self.ops_per_txn}"
            )
        if not 0.0 < self.hot_fraction <= 1.0:
            raise WorkloadError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if not 0.0 <= self.hot_probability <= 1.0:
            raise WorkloadError(
                f"hot_probability must be in [0, 1], got {self.hot_probability}"
            )
        if not self.ops:
            raise WorkloadError("synthetic workload needs at least one op")
        for op in self.ops:
            if op not in OP_KINDS:
                raise WorkloadError(
                    f"unknown op {op!r}; valid ops: {', '.join(OP_KINDS)}"
                )
        if not self.phases:
            raise WorkloadError("synthetic workload needs at least one phase")
        for phase in self.phases[:-1]:
            if phase.transactions == 0:
                raise WorkloadError(
                    f"synthetic phase {phase.mix!r}: only the final phase "
                    "may be unbounded (transactions=0)"
                )

    @property
    def hot_keys(self) -> int:
        """Size of the hot account set (at least one key)."""
        return max(1, int(self.tpcb.accounts * self.hot_fraction))


def _renormalized(matrix: Dict[str, Dict[str, float]],
                  ops: Tuple[str, ...]) -> Dict[str, List[Tuple[str, float]]]:
    """Restrict a preset matrix to the allowed op vocabulary.

    Each row keeps only allowed destination ops and is renormalized to
    sum to 1; a row whose allowed mass is zero degrades to the uniform
    distribution over the vocabulary so the chain never wedges.
    """
    rows: Dict[str, List[Tuple[str, float]]] = {}
    for src in ops:
        entries = [(dst, matrix[src].get(dst, 0.0)) for dst in ops]
        total = sum(weight for _, weight in entries)
        if total <= 0.0:
            entries = [(dst, 1.0) for dst in ops]
            total = float(len(ops))
        rows[src] = [(dst, weight / total) for dst, weight in entries]
    return rows


@dataclass(frozen=True)
class SynthOp:
    """One pre-drawn operation: the engine procedure plus its inputs.

    Operations are drawn when the transaction is *constructed*, so a
    step re-executed after a :class:`~repro.db.engine.LockWait` wakeup
    repeats the identical engine call and the stream stays
    deterministic.
    """

    kind: str
    key: int = 0
    span: int = 0
    delta: int = 0
    #: Point reads take an X lock up front when the same transaction
    #: later updates the key (lock-upgrade avoidance, see _draw_ops).
    for_update: bool = False


class SyntheticTransaction:
    """A pre-drawn operation sequence as a resumable step machine
    (same driver protocol as TPC-B / DSS transactions)."""

    def __init__(self, engine: Engine, config: SyntheticConfig, pid: int,
                 ops: List[SynthOp], timestamp: int) -> None:
        self.engine = engine
        self.config = config
        self.pid = pid
        self.ops = ops
        self.timestamp = timestamp
        self.txn: Optional[Transaction] = None
        self.result = 0
        self._step = 0
        self.woken_txns: List[int] = []

    @property
    def done(self) -> bool:
        """True once commit has run."""
        return self._step >= len(self.ops) + 2

    @property
    def step_index(self) -> int:
        """Index of the next step (0 = begin has not run yet)."""
        return self._step

    def run_step(self) -> None:
        """Execute the next step; raises LockWait when it parks."""
        if self.done:
            raise WorkloadError("transaction already complete")
        if self._step == 0:
            self.txn = self.engine.begin()
        elif self._step <= len(self.ops):
            self._run_op(self.ops[self._step - 1])
        else:
            self.woken_txns = self.engine.commit(self.txn)
        self._step += 1

    def _run_op(self, op: SynthOp) -> None:
        if op.kind == "read":
            row = self.engine.get_row(
                self.txn, "account", op.key, for_update=op.for_update
            )
            self.result += row["balance"]
        elif op.kind == "update":
            self.engine.update_row(
                self.txn, "account", op.key, deltas={"balance": op.delta}
            )
        elif op.kind == "insert":
            branch = op.key // self.config.tpcb.accounts_per_branch
            self.engine.insert_row(
                self.txn,
                "history",
                {
                    "account_id": op.key,
                    "teller_id": branch * self.config.tpcb.tellers_per_branch,
                    "branch_id": branch,
                    "delta": op.delta,
                    "timestamp": self.timestamp,
                },
            )
        elif op.kind == "scan":
            branch = op.key % self.config.tpcb.branches
            rows = self.engine.scan_rows(
                self.txn, "teller", lambda r: r["branch_id"] == branch
            )
            self.result += sum(r["balance"] for r in rows)
        elif op.kind == "range":
            rows = self.engine.range_rows(
                self.txn, "account", op.key, op.key + op.span - 1
            )
            self.result += sum(r["balance"] for r in rows)
        else:  # pragma: no cover - op kinds validated at config time
            raise WorkloadError(f"unknown synthetic op {op.kind!r}")


class SyntheticClient:
    """One server process's seeded Markov walk over the op vocabulary.

    The Markov state persists across transactions; the phase schedule
    advances on per-client transaction counts, exactly like
    :class:`~repro.workloads.phased.PhasedClient`.
    """

    def __init__(self, config: SyntheticConfig, pid: int) -> None:
        self.config = config
        self.pid = pid
        self._rng = random.Random((config.seed << 16) ^ pid)
        self._matrices = {
            name: _renormalized(MIX_PRESETS[name], config.ops)
            for name in {phase.mix for phase in config.phases}
        }
        self._state = config.ops[0]
        self._phase_index = 0
        self._issued_in_phase = 0
        self._clock = 0

    @property
    def phase(self) -> SynthPhase:
        """The phase the *next* transaction will be drawn from."""
        self._advance()
        return self.config.phases[self._phase_index]

    def _advance(self) -> None:
        while True:
            phase = self.config.phases[self._phase_index]
            last = self._phase_index + 1 >= len(self.config.phases)
            if last or not phase.transactions or \
                    self._issued_in_phase < phase.transactions:
                return
            self._phase_index += 1
            self._issued_in_phase = 0

    def _next_op_kind(self, matrix: Dict[str, List[Tuple[str, float]]]) -> str:
        draw = self._rng.random()
        cumulative = 0.0
        row = matrix[self._state]
        for dst, weight in row:
            cumulative += weight
            if draw < cumulative:
                self._state = dst
                return dst
        self._state = row[-1][0]
        return self._state

    def _draw_key(self) -> int:
        accounts = self.config.tpcb.accounts
        if self._rng.random() < self.config.hot_probability:
            return self._rng.randrange(self.config.hot_keys)
        return self._rng.randrange(accounts)

    def _draw_ops(self, mix: str) -> List[SynthOp]:
        matrix = self._matrices[mix]
        accounts = self.config.tpcb.accounts
        span = max(8, accounts // 32)
        ops: List[SynthOp] = []
        for _ in range(self.config.ops_per_txn):
            kind = self._next_op_kind(matrix)
            key = self._draw_key()
            if kind == "range":
                key = min(key, max(0, accounts - span))
            ops.append(
                SynthOp(
                    kind=kind,
                    key=key,
                    span=span,
                    delta=self._rng.randint(-999, 999),
                )
            )
        return self._order_locks(ops)

    @staticmethod
    def _order_locks(ops: List[SynthOp]) -> List[SynthOp]:
        """Canonical lock discipline: row locks in ascending key order,
        strongest mode at first touch.

        The engine's transaction model (like TPC-B's fixed
        account -> teller -> branch order) assumes deadlock-free
        schedules, so the generator reorders the lock-acquiring ops
        (read/update) of each transaction by key and upgrades reads of
        keys the same transaction updates to ``for_update`` — no lock
        upgrades, no cyclic waits.  Scans, range reads, and history
        inserts take no row locks and keep their drawn positions.
        """
        positions = [
            i for i, op in enumerate(ops) if op.kind in ("read", "update")
        ]
        updated = {op.key for op in ops if op.kind == "update"}
        locked = sorted(
            (ops[i] for i in positions), key=lambda op: op.key
        )
        ordered = list(ops)
        for position, op in zip(positions, locked):
            if op.kind == "read" and op.key in updated:
                op = SynthOp(
                    kind=op.kind, key=op.key, span=op.span,
                    delta=op.delta, for_update=True,
                )
            ordered[position] = op
        return ordered

    def next_transaction(self, engine: Engine) -> SyntheticTransaction:
        """Draw the next transaction's operation sequence."""
        phase = self.phase  # advances the schedule if needed
        self._issued_in_phase += 1
        self._clock += 1
        return SyntheticTransaction(
            engine, self.config, self.pid, self._draw_ops(phase.mix),
            timestamp=(self.pid << 20) + self._clock,
        )


class SyntheticWorkload:
    """Pluggable workload for :class:`~repro.execution.mp.OltpSystem`,
    first-class next to TPC-B / DSS / phased."""

    def __init__(self, config: Optional[SyntheticConfig] = None) -> None:
        self.config = config or SyntheticConfig()

    def load(self, engine: Engine) -> None:
        """Populate the shared TPC-B schema the operations run over."""
        load_database(engine, self.config.tpcb)

    def client(self, pid: int) -> SyntheticClient:
        """The per-process transaction factory."""
        return SyntheticClient(self.config, pid)


__all__ = [
    "MIX_PRESETS",
    "OP_KINDS",
    "SynthOp",
    "SynthPhase",
    "SyntheticClient",
    "SyntheticConfig",
    "SyntheticTransaction",
    "SyntheticWorkload",
]
