"""Declarative scenario matrix over the layout-optimization pipeline.

The paper's evaluation is a hand-run matrix: workloads (TPC-B, DSS)
crossed with cache geometries and layout combinations.  This package
turns that matrix into data:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec`, the declarative
  cell (workload x hierarchy x combo x drift x engine), with a
  validated registry, TOML/JSON matrix files, and fingerprints that
  plug into the artifact-store pipeline cache.
* :mod:`repro.scenarios.synth` — the seeded synthetic OLTP workload
  generator (Markov op mixes, hot-set skew, loop depth, phase
  schedules), a first-class workload next to TPC-B/DSS.
* :mod:`repro.scenarios.matrix` — the resumable matrix runner:
  crash-safe per-cell persistence, ``repro.check`` gating, and the
  ``BENCH_scenarios`` document.
* :mod:`repro.scenarios.report` — the cross-scenario Markdown report
  (per-cell recovery, family sensitivity ranking, paper verdict).
* :mod:`repro.scenarios.staticbench` — the ``repro static-bench``
  engine: measured vs static vs hybrid profile sources per cell, with
  the OLTP static-recovery gate (``BENCH_staticpred``).

See ``docs/SCENARIOS.md`` for the user guide and matrix-file schema.
"""

from repro.scenarios.matrix import CellResult, MatrixResult, run_matrix
from repro.scenarios.report import render_scenarios_report
from repro.scenarios.staticbench import (
    StaticBenchResult,
    run_static_bench,
)
from repro.scenarios.spec import (
    HierarchySpec,
    ScenarioSpec,
    WorkloadSpec,
    default_matrix,
    load_specs,
    register,
    registered,
    registry_names,
    select_specs,
)
from repro.scenarios.synth import (
    MIX_PRESETS,
    OP_KINDS,
    SynthPhase,
    SyntheticConfig,
    SyntheticWorkload,
)

__all__ = [
    "MIX_PRESETS",
    "OP_KINDS",
    "CellResult",
    "HierarchySpec",
    "MatrixResult",
    "ScenarioSpec",
    "StaticBenchResult",
    "SynthPhase",
    "SyntheticConfig",
    "SyntheticWorkload",
    "WorkloadSpec",
    "default_matrix",
    "load_specs",
    "register",
    "registered",
    "registry_names",
    "render_scenarios_report",
    "run_matrix",
    "run_static_bench",
    "select_specs",
]
