"""Declarative scenario specifications and the validated registry.

A :class:`ScenarioSpec` names one cell of the evaluation space the
paper sweeps by hand — **workload × memory hierarchy × layout combo ×
drift pattern × simulation engine** — as plain data.  Specs load from
TOML or JSON matrix files (:func:`load_specs`), validate eagerly
(:meth:`ScenarioSpec.validate`), and fingerprint canonically
(:meth:`ScenarioSpec.fingerprint`), so the matrix runner
(:mod:`repro.scenarios.matrix`) can key per-cell results in the
:class:`~repro.harness.store.ArtifactStore` and resume a killed sweep
without re-simulating finished cells.

The crucial cache property: :meth:`ScenarioSpec.experiment_config`
builds a plain :class:`~repro.harness.experiment.ExperimentConfig`, so
every cell reuses the same content-addressed pipeline cache as the
figure commands — a ``tpcb`` quick cell shares codegen, profiles and
the measurement trace with ``repro figure fig04`` bit for bit, and the
other workloads key their products by a ``cache_salt`` derived from
the workload axis.

Matrix files carry one ``[[scenario]]`` table per cell::

    [[scenario]]
    name = "synth-hot-32k"
    combo = "all"
    engine = "batched"
    drift = "none"

    [scenario.workload]
    kind = "synthetic"          # tpcb | dss | phased | synthetic
    mix = "oltp"                # synthetic: initial Markov mix preset
    hot_probability = 0.9       # synthetic: hot-set skew

    [scenario.hierarchy]
    l1i_kb = 32
    line = 64
    assoc = 1

See ``docs/SCENARIOS.md`` for the full schema reference.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ScenarioError
from repro.harness.experiment import (
    STREAM_SCOPES,
    ExperimentConfig,
    default_experiment,
    quick_experiment,
)
from repro.layout import Combo
from repro.scenarios.synth import MIX_PRESETS, OP_KINDS
from repro.sim import MemoryHierarchy
from repro.staticpred import PROFILE_SOURCES

#: Bump when the canonical spec payload changes shape (invalidates
#: every cached cell result).
SPEC_VERSION = 1

#: Workload kinds a scenario may name.
WORKLOAD_KINDS = ("tpcb", "dss", "phased", "synthetic")

#: Drift patterns: ``none`` keeps the mix fixed for the whole run;
#: ``shift`` swaps the mix mid-run (the Section 5 interference setup).
DRIFT_PATTERNS = ("none", "shift")

#: Valid simulation engines for a cell (see ``docs/SIMULATION.md``).
ENGINES = ("batched", "classic")

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class WorkloadSpec:
    """The workload axis: a kind plus the synthetic generator's knobs.

    The ``mix``/``hot_*``/``ops*`` fields only apply to
    ``kind="synthetic"`` (they are ignored — and excluded from the
    fingerprint — for the hand-built workloads).
    """

    kind: str = "tpcb"
    #: Synthetic: initial Markov mix preset (see ``MIX_PRESETS``).
    mix: str = "oltp"
    #: Synthetic: mix preset after a ``shift`` drift (defaults to the
    #: natural opposite of ``mix``: oltp<->scan, mixed->oltp).
    shift_mix: str = ""
    #: Synthetic: hot-set skew dial.
    hot_probability: float = 0.75
    #: Synthetic: hot-set size as a fraction of the account table.
    hot_fraction: float = 0.05
    #: Synthetic: operations per transaction (loop depth).
    ops_per_txn: int = 4
    #: Synthetic: restricted procedure vocabulary (empty = all ops).
    ops: Tuple[str, ...] = ()

    @property
    def family(self) -> str:
        """The workload family label used by the sensitivity report."""
        if self.kind == "synthetic":
            return f"synthetic-{self.mix}"
        if self.kind == "tpcb":
            return "oltp"
        return self.kind

    def effective_shift_mix(self) -> str:
        """The post-shift mix, defaulting to the opposite family."""
        if self.shift_mix:
            return self.shift_mix
        return {"oltp": "scan", "scan": "oltp", "mixed": "oltp"}[self.mix]

    def canonical(self) -> Dict:
        """The fingerprint payload (synthetic knobs only when used)."""
        payload: Dict = {"kind": self.kind}
        if self.kind == "synthetic":
            payload.update(
                mix=self.mix,
                shift_mix=self.shift_mix,
                hot_probability=self.hot_probability,
                hot_fraction=self.hot_fraction,
                ops_per_txn=self.ops_per_txn,
                ops=list(self.ops),
            )
        return payload


@dataclass(frozen=True)
class HierarchySpec:
    """The memory-hierarchy axis, in the paper's geometry vocabulary."""

    l1i_kb: int = 32
    line: int = 64
    assoc: int = 1
    #: Unified L2 size (0 = no L2; the L1I then runs the full LRU
    #: simulator instead of the tag-array/refill path).
    l2_kb: int = 0
    l2_line: int = 64
    l2_assoc: int = 4
    itlb_entries: int = 0

    def to_hierarchy(self) -> MemoryHierarchy:
        """The :class:`~repro.sim.MemoryHierarchy` this spec names."""
        from repro.cache import CacheGeometry

        l2 = None
        if self.l2_kb:
            l2 = CacheGeometry(self.l2_kb * 1024, self.l2_line, self.l2_assoc)
        return MemoryHierarchy(
            l1i=CacheGeometry(self.l1i_kb * 1024, self.line, self.assoc),
            l2=l2,
            itlb_entries=self.itlb_entries,
        )

    @property
    def label(self) -> str:
        """Compact human label, e.g. ``32K/64B/1w`` or ``…+L2 1M``."""
        text = f"{self.l1i_kb}K/{self.line}B/{self.assoc}w"
        if self.l2_kb:
            text += f"+L2 {self.l2_kb}K"
        return text


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative cell of the scenario matrix."""

    name: str
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    hierarchy: HierarchySpec = field(default_factory=HierarchySpec)
    #: Layout combination measured against ``base``.
    combo: str = "all"
    drift: str = "none"
    #: ``shift`` drift: per-client transactions before the mix swaps.
    shift_after: int = 5
    engine: str = "batched"
    #: Address-space slice fed to the simulators.
    scope: str = "app"
    #: Quick (test-sized) or paper-scale experiment.
    quick: bool = True
    #: Profile the optimized layout is built from: ``measured`` (the
    #: profiling run), ``static`` (synthesized, profile-free) or
    #: ``hybrid`` (measured + static prior).
    profile_source: str = "measured"

    # -- validation ---------------------------------------------------------

    def validate(self) -> "ScenarioSpec":
        """Check every axis; raises :class:`ScenarioError` on the first
        problem, returns ``self`` so calls chain."""
        if not self.name or not all(
            c.isalnum() or c in "._-" for c in self.name
        ):
            raise ScenarioError(
                f"scenario name {self.name!r} must be non-empty and use "
                "only letters, digits, '.', '_', '-'"
            )
        if self.workload.kind not in WORKLOAD_KINDS:
            raise ScenarioError(
                f"{self.name}: unknown workload kind "
                f"{self.workload.kind!r}; valid kinds: "
                f"{', '.join(WORKLOAD_KINDS)}"
            )
        if self.workload.kind == "synthetic":
            # Validate the base mix first: effective_shift_mix() maps
            # it through the opposite-family table and would KeyError
            # on an unknown one.
            mixes = [self.workload.mix]
            if self.workload.mix in MIX_PRESETS:
                mixes.append(self.workload.effective_shift_mix())
            for mix in mixes:
                if mix not in MIX_PRESETS:
                    raise ScenarioError(
                        f"{self.name}: unknown synthetic mix {mix!r}; "
                        f"valid mixes: {', '.join(sorted(MIX_PRESETS))}"
                    )
            for op in self.workload.ops:
                if op not in OP_KINDS:
                    raise ScenarioError(
                        f"{self.name}: unknown synthetic op {op!r}; "
                        f"valid ops: {', '.join(OP_KINDS)}"
                    )
        try:
            Combo.parse(self.combo)
        except Exception as exc:
            raise ScenarioError(f"{self.name}: {exc}") from None
        if self.drift not in DRIFT_PATTERNS:
            raise ScenarioError(
                f"{self.name}: unknown drift pattern {self.drift!r}; "
                f"valid patterns: {', '.join(DRIFT_PATTERNS)}"
            )
        if self.drift == "shift" and self.workload.kind == "phased":
            raise ScenarioError(
                f"{self.name}: the phased workload is already a shift "
                "schedule; use drift='none' (or kind='tpcb' with "
                "drift='shift')"
            )
        if self.drift == "shift" and self.shift_after < 1:
            raise ScenarioError(
                f"{self.name}: shift_after must be >= 1 for drift='shift'"
            )
        if self.engine not in ENGINES:
            raise ScenarioError(
                f"{self.name}: unknown engine {self.engine!r}; valid "
                f"engines: {', '.join(ENGINES)}"
            )
        if self.engine == "batched" and (
            self.hierarchy.assoc != 1 or self.hierarchy.l2_kb
        ):
            raise ScenarioError(
                f"{self.name}: the batched engine only sweeps "
                "direct-mapped L1I-only hierarchies; use "
                "engine='classic' for associative or multi-level cells"
            )
        if self.scope not in STREAM_SCOPES:
            raise ScenarioError(
                f"{self.name}: unknown stream scope {self.scope!r}; "
                f"valid scopes: {', '.join(STREAM_SCOPES)}"
            )
        if self.profile_source not in PROFILE_SOURCES:
            raise ScenarioError(
                f"{self.name}: unknown profile source "
                f"{self.profile_source!r}; valid sources: "
                f"{', '.join(PROFILE_SOURCES)}"
            )
        try:
            self.hierarchy.to_hierarchy()
        except Exception as exc:
            raise ScenarioError(f"{self.name}: bad hierarchy: {exc}") from None
        return self

    # -- identity -----------------------------------------------------------

    def canonical(self) -> Dict:
        """The content payload (everything except the display name).

        ``profile_source`` only contributes when it departs from
        ``measured``, so every pre-existing measured cell keeps its
        fingerprint (and its cached results) across the axis addition.
        """
        payload = {
            "version": SPEC_VERSION,
            "workload": self.workload.canonical(),
            "hierarchy": asdict(self.hierarchy),
            "combo": Combo.parse(self.combo).value,
            "drift": self.drift,
            "shift_after": self.shift_after if self.drift == "shift" else 0,
            "engine": self.engine,
            "scope": self.scope,
            "quick": self.quick,
        }
        if self.profile_source != "measured":
            payload["profile_source"] = self.profile_source
        return payload

    def fingerprint(self) -> str:
        """Stable content hash of the cell (name excluded: two names
        for identical axes share one cached result)."""
        canonical = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]

    # -- experiment plumbing ------------------------------------------------

    def cache_salt(self) -> str:
        """The pipeline-cache salt for this cell's workload axis.

        Empty for plain TPC-B — that is the default workload, so the
        cell shares cache entries with every figure command.  The
        hierarchy/combo/engine axes deliberately do not contribute:
        cells differing only in those reuse one pipeline.
        """
        if self.workload.kind == "tpcb" and self.drift == "none":
            return ""
        payload = {
            "workload": self.workload.canonical(),
            "drift": self.drift,
            "shift_after": self.shift_after if self.drift == "shift" else 0,
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()[:12]
        return f"scn-{self.workload.kind}-{digest}"

    def workload_factory(self):
        """The ``(tpcb_config, seed_offset) -> workload`` factory for
        :class:`~repro.harness.experiment.ExperimentConfig` (``None``
        for plain TPC-B, which is the pipeline default)."""
        spec = self
        kind, drift = spec.workload.kind, spec.drift

        if kind == "tpcb" and drift == "none":
            return None

        def factory(tpcb, _seed_offset):
            from repro.workloads.dss import DssConfig, DssWorkload
            from repro.workloads.phased import (
                Phase,
                PhasedConfig,
                PhasedWorkload,
            )
            from repro.scenarios.synth import (
                SynthPhase,
                SyntheticConfig,
                SyntheticWorkload,
            )

            if kind == "synthetic":
                phases = (SynthPhase(spec.workload.mix, 0),)
                if drift == "shift":
                    phases = (
                        SynthPhase(spec.workload.mix, spec.shift_after),
                        SynthPhase(spec.workload.effective_shift_mix(), 0),
                    )
                return SyntheticWorkload(
                    SyntheticConfig(
                        tpcb=tpcb,
                        ops_per_txn=spec.workload.ops_per_txn,
                        hot_fraction=spec.workload.hot_fraction,
                        hot_probability=spec.workload.hot_probability,
                        ops=spec.workload.ops or OP_KINDS,
                        phases=phases,
                    )
                )
            if kind == "dss" and drift == "none":
                return DssWorkload(DssConfig(tpcb=tpcb))
            # The remaining combinations are phase schedules.
            if kind == "phased" or (kind == "tpcb" and drift == "shift"):
                phases = (
                    Phase("tpcb", spec.shift_after), Phase("dss", 0)
                )
            else:  # dss + shift
                phases = (
                    Phase("dss", spec.shift_after), Phase("tpcb", 0)
                )
            return PhasedWorkload(PhasedConfig(tpcb=tpcb, phases=phases))

        return factory

    def experiment_config(self) -> ExperimentConfig:
        """The pipeline configuration this cell runs on.

        Derived from the shared quick/paper-scale base configs, so a
        plain-TPC-B cell fingerprints identically to the figure
        commands and reuses their cached codegen/profile/trace
        artifacts outright.
        """
        base = (
            quick_experiment().config if self.quick
            else default_experiment().config
        )
        factory = self.workload_factory()
        if factory is None:
            return base
        return replace(
            base, workload_factory=factory, cache_salt=self.cache_salt()
        )

    # -- (de)serialization --------------------------------------------------

    def to_dict(self) -> Dict:
        """The spec as a plain JSON/TOML-ready dict."""
        payload = asdict(self)
        payload["workload"]["ops"] = list(self.workload.ops)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "ScenarioSpec":
        """Rebuild (and validate) a spec from :meth:`to_dict` output
        or a matrix-file table; unknown keys are rejected loudly."""
        data = dict(payload)
        workload = data.pop("workload", {})
        hierarchy = data.pop("hierarchy", {})
        for section, cls_, label in (
            (workload, WorkloadSpec, "workload"),
            (hierarchy, HierarchySpec, "hierarchy"),
        ):
            unknown = set(section) - {
                f for f in cls_.__dataclass_fields__
            }
            if unknown:
                raise ScenarioError(
                    f"scenario {data.get('name', '?')!r}: unknown "
                    f"{label} key(s): {', '.join(sorted(unknown))}"
                )
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ScenarioError(
                f"scenario {data.get('name', '?')!r}: unknown key(s): "
                f"{', '.join(sorted(unknown))}"
            )
        if "ops" in workload:
            workload = dict(workload, ops=tuple(workload["ops"]))
        spec = cls(
            workload=WorkloadSpec(**workload),
            hierarchy=HierarchySpec(**hierarchy),
            **data,
        )
        return spec.validate()


# -- matrix files -----------------------------------------------------------


def load_specs(path: PathLike) -> List[ScenarioSpec]:
    """Load and validate every scenario in a ``.toml``/``.json`` matrix
    file.  Duplicate names are rejected; an empty file is an error."""
    path = pathlib.Path(path)
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            try:
                import tomli as tomllib  # type: ignore[no-redef]
            except ImportError:
                raise ScenarioError(
                    f"{path}: TOML matrix files need Python 3.11+ "
                    "(tomllib); re-encode the matrix as JSON"
                ) from None
        document = tomllib.loads(path.read_text())
    elif path.suffix == ".json":
        document = json.loads(path.read_text())
    else:
        raise ScenarioError(
            f"{path}: matrix files must be .toml or .json"
        )
    tables = document.get("scenario")
    if not isinstance(tables, list) or not tables:
        raise ScenarioError(
            f"{path}: no scenarios found (expected one [[scenario]] "
            "table per cell)"
        )
    specs = [ScenarioSpec.from_dict(table) for table in tables]
    _reject_duplicates(specs, str(path))
    return specs


def _reject_duplicates(specs: Sequence[ScenarioSpec], source: str) -> None:
    seen: Dict[str, int] = {}
    for spec in specs:
        if spec.name in seen:
            raise ScenarioError(
                f"{source}: duplicate scenario name {spec.name!r}"
            )
        seen[spec.name] = 1


def select_specs(
    specs: Sequence[ScenarioSpec], patterns: Sequence[str]
) -> List[ScenarioSpec]:
    """Filter specs by name globs; a pattern matching nothing is an
    error (a silently empty selection hides typos)."""
    if not patterns:
        return list(specs)
    chosen: List[ScenarioSpec] = []
    for pattern in patterns:
        matched = [s for s in specs if fnmatch.fnmatchcase(s.name, pattern)]
        if not matched:
            raise ScenarioError(
                f"--select {pattern!r} matched no scenario; available: "
                f"{', '.join(s.name for s in specs)}"
            )
        for spec in matched:
            if spec not in chosen:
                chosen.append(spec)
    return chosen


# -- the validated registry -------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add a validated spec to the process-wide registry."""
    spec.validate()
    if spec.name in _REGISTRY and not overwrite:
        raise ScenarioError(
            f"scenario {spec.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def registered(name: str) -> ScenarioSpec:
    """Look one registered spec up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def registry_names() -> Tuple[str, ...]:
    """Every registered scenario name, in registration order."""
    return tuple(_REGISTRY)


def default_matrix(quick: bool = True) -> List[ScenarioSpec]:
    """The built-in cross-family matrix.

    Four workload families (TPC-B, DSS, and two synthetic mixes) each
    run on a direct-mapped 32K L1I under the batched engine and a
    2-way 64K L1I under the classic engine, plus two drifted cells —
    ten cells spanning every axis.  ``quick`` selects the test-sized
    experiment scale (the default; CI and the committed baseline use
    it), ``quick=False`` the paper-scale configuration.
    """
    i32 = HierarchySpec(l1i_kb=32, line=64, assoc=1)
    i64x2 = HierarchySpec(l1i_kb=64, line=64, assoc=2)
    workloads = [
        ("tpcb", WorkloadSpec(kind="tpcb")),
        ("dss", WorkloadSpec(kind="dss")),
        ("synth-oltp", WorkloadSpec(kind="synthetic", mix="oltp",
                                    hot_probability=0.85)),
        ("synth-scan", WorkloadSpec(kind="synthetic", mix="scan",
                                    hot_probability=0.85)),
    ]
    specs = []
    for stem, workload in workloads:
        specs.append(ScenarioSpec(
            name=f"{stem}-i32", workload=workload, hierarchy=i32,
            engine="batched", quick=quick,
        ))
        specs.append(ScenarioSpec(
            name=f"{stem}-i64x2", workload=workload, hierarchy=i64x2,
            engine="classic", quick=quick,
        ))
    # shift_after counts per-client transactions; the quick runs spread
    # ~70 transactions over 16 clients, so the shift must land early to
    # be visible in the measurement window.
    specs.append(ScenarioSpec(
        name="tpcb-shift-i32", workload=WorkloadSpec(kind="tpcb"),
        hierarchy=i32, drift="shift", shift_after=2, engine="batched",
        quick=quick,
    ))
    specs.append(ScenarioSpec(
        name="synth-oltp-shift-i32",
        workload=WorkloadSpec(kind="synthetic", mix="oltp",
                              hot_probability=0.85),
        hierarchy=i32, drift="shift", shift_after=2, engine="batched",
        quick=quick,
    ))
    return [spec.validate() for spec in specs]


for _spec in default_matrix():
    register(_spec, overwrite=True)
del _spec
