"""The resumable scenario-matrix runner.

:func:`run_matrix` takes a list of validated
:class:`~repro.scenarios.spec.ScenarioSpec` cells and produces one
:class:`MatrixResult`.  Three properties matter:

**Crash-safe resume.**  Each finished cell is written to the
:class:`~repro.harness.store.ArtifactStore` *by the worker that
computed it*, atomically, before the worker returns — under the cell's
experiment fingerprint as ``scenario-<spec_fingerprint>.json``.  A
re-run after a mid-sweep kill loads those cells back (status
``cached``) and only simulates the remainder.  Cached cells are
validated (schema version + spec fingerprint) so a stale or foreign
entry silently degrades to a recompute, never a wrong result.

**Pipeline reuse.**  Before fanning out, the runner warms each
*distinct* experiment configuration once, serially — codegen, the
profiling run, layouts, and the measurement trace land in the store
(and in the in-process memo, which forked workers inherit).  Cells
that differ only in hierarchy/combo/engine then share one pipeline;
the fan-out via :func:`~repro.pipeline.fanout.resilient_map` spends
its time purely on cache simulation (retrying with backoff if a
worker process is killed mid-sweep).

**Gated results.**  Each cell's optimized layout runs through the
:mod:`repro.check` families (``--check`` semantics are always on
unless ``verify=False``); a failing gate marks the cell rather than
silently reporting numbers from a corrupt layout.

A worker failure (bad cell, unexpected exception) produces a
``failed`` cell carrying the error text — one broken cell never kills
a 50-cell sweep.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ScenarioError
from repro.harness.experiment import Experiment
from repro.harness.figures import Table
from repro.pipeline import resilient_map
from repro.harness.store import ArtifactStore
from repro.layout import Combo
from repro.scenarios.spec import ScenarioSpec, _reject_duplicates

#: Bump when the cached cell payload changes shape (old cells are then
#: recomputed instead of misread).
CELL_SCHEMA_VERSION = 1

#: Numeric table columns (name -> CellResult attribute), shared by the
#: table, the benchmark document, and the report renderer.
CELL_METRICS = (
    ("base_mpki", "base_mpki"),
    ("opt_mpki", "opt_mpki"),
    ("recovered_pct", "recovery_pct"),
    ("gate_ok", "gate_ok"),
)


@dataclass
class CellResult:
    """The outcome of one scenario cell."""

    name: str
    family: str
    workload_kind: str
    hierarchy: str
    combo: str
    drift: str
    engine: str
    scope: str
    #: ``simulated`` (computed this run), ``cached`` (loaded from the
    #: store), or ``failed``.
    status: str
    #: Profile source the optimized layout was built from (defaulted
    #: so cells cached before the axis existed still load).
    profile_source: str = "measured"
    instructions: int = 0
    base_misses: int = 0
    opt_misses: int = 0
    base_mpki: float = 0.0
    opt_mpki: float = 0.0
    #: Percentage of baseline L1I misses removed by the combo.
    recovery_pct: float = 0.0
    gate_ok: bool = True
    gate_errors: int = 0
    seconds: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the cell simulated (or loaded) and passed the gate."""
        return self.status != "failed" and self.gate_ok

    def to_dict(self) -> Dict:
        """The cell as a JSON-ready dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "CellResult":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(**payload)


def _cell_artifact_name(spec: ScenarioSpec) -> str:
    return f"scenario-{spec.fingerprint()}.json"


def _save_cell_json(payload: Dict, path) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def _load_cell_json(path) -> Dict:
    with open(path) as handle:
        return json.load(handle)


#: In-process pipeline memo keyed by experiment fingerprint.  Forked
#: workers inherit the parent's warmed entries, so even store-less runs
#: build each distinct pipeline exactly once.
_EXPERIMENT_MEMO: Dict[str, Experiment] = {}


def _experiment_for(spec: ScenarioSpec, store: Optional[ArtifactStore]) -> Experiment:
    config = spec.experiment_config()
    fingerprint = config.fingerprint()
    exp = _EXPERIMENT_MEMO.get(fingerprint)
    if exp is None:
        exp = Experiment(config, store=store)
        _EXPERIMENT_MEMO[fingerprint] = exp
    elif exp.store is None and store is not None:
        exp.attach_store(store)
    return exp


def _simulate_misses(spec: ScenarioSpec, streams) -> int:
    """L1I miss count for one stream set under the cell's engine."""
    from repro.sim import simulate, simulate_grid

    hier = spec.hierarchy
    if spec.engine == "batched":
        size = hier.l1i_kb * 1024
        grid = simulate_grid(streams, [size], [hier.line], engine="batched")
        return int(grid[(size, hier.line)])
    return int(simulate(streams, hier.to_hierarchy()).l1i_misses)


def _run_cell(task: Tuple[Dict, Optional[str], bool]) -> Dict:
    """Worker: simulate one cell and persist it before returning.

    Module-level (picklable) for :func:`resilient_map`.  Never raises:
    any failure comes back as a ``failed`` cell so one bad cell cannot
    abort the sweep.
    """
    payload, store_root, verify = task
    spec = ScenarioSpec.from_dict(payload)
    store = ArtifactStore(store_root) if store_root else None
    started = time.perf_counter()
    cell = CellResult(
        name=spec.name,
        family=spec.workload.family,
        workload_kind=spec.workload.kind,
        hierarchy=spec.hierarchy.label,
        combo=Combo.parse(spec.combo).value,
        drift=spec.drift,
        engine=spec.engine,
        scope=spec.scope,
        status="simulated",
        profile_source=spec.profile_source,
    )
    try:
        with obs.span("scenarios.cell", scenario=spec.name):
            exp = _experiment_for(spec, store)
            base = exp.streams("base", scope=spec.scope)
            opt = exp.streams(
                cell.combo,
                scope=spec.scope,
                profile_source=spec.profile_source,
            )
            cell.instructions = base.instructions
            cell.base_misses = _simulate_misses(spec, base)
            cell.opt_misses = _simulate_misses(spec, opt)
            kilo = max(1, cell.instructions) / 1000.0
            cell.base_mpki = cell.base_misses / kilo
            cell.opt_mpki = cell.opt_misses / kilo
            if cell.base_misses:
                cell.recovery_pct = (
                    100.0 * (cell.base_misses - cell.opt_misses)
                    / cell.base_misses
                )
            if verify:
                from repro.check import check_all
                from repro.ir import assign_addresses

                layout = exp.layout_for(cell.combo, spec.profile_source)
                report = check_all(
                    exp.app.binary,
                    profile=exp.profile_for(spec.profile_source),
                    layout=layout,
                    address_map=assign_addresses(exp.app.binary, layout),
                    target=spec.name,
                )
                cell.gate_ok = report.ok
                cell.gate_errors = len(report.errors)
    except Exception as exc:  # a broken cell must not kill the sweep
        cell.status = "failed"
        cell.error = f"{type(exc).__name__}: {exc}"
    cell.seconds = round(time.perf_counter() - started, 3)
    if store is not None and cell.status != "failed":
        store.save(
            spec.experiment_config().fingerprint(),
            _cell_artifact_name(spec),
            {
                "schema": CELL_SCHEMA_VERSION,
                "spec_fingerprint": spec.fingerprint(),
                "spec": spec.to_dict(),
                "cell": cell.to_dict(),
            },
            _save_cell_json,
        )
    return cell.to_dict()


def _load_cached_cell(
    spec: ScenarioSpec, store: ArtifactStore
) -> Optional[CellResult]:
    """A completed cell from a previous run, or None.

    Schema or fingerprint mismatches degrade to a recompute.
    """
    payload = store.load(
        spec.experiment_config().fingerprint(),
        _cell_artifact_name(spec),
        _load_cell_json,
    )
    if not isinstance(payload, dict):
        return None
    if payload.get("schema") != CELL_SCHEMA_VERSION:
        return None
    if payload.get("spec_fingerprint") != spec.fingerprint():
        return None
    try:
        cell = CellResult.from_dict(payload["cell"])
    except (KeyError, TypeError):
        return None
    cell.status = "cached"
    cell.name = spec.name  # the cached run may have used another alias
    return cell


@dataclass
class MatrixResult:
    """Every cell outcome plus the cross-scenario rollups."""

    cells: List[CellResult] = field(default_factory=list)

    @property
    def simulated(self) -> int:
        """Cells computed by this run."""
        return sum(1 for c in self.cells if c.status == "simulated")

    @property
    def cached(self) -> int:
        """Cells resumed from the store."""
        return sum(1 for c in self.cells if c.status == "cached")

    @property
    def failed(self) -> List[CellResult]:
        """Cells that errored."""
        return [c for c in self.cells if c.status == "failed"]

    def family_sensitivity(self) -> List[Tuple[str, float, float, int]]:
        """``(family, mean recovered MPKI, mean recovery %, cells)``
        ranked most layout-sensitive first.

        Sensitivity is the *absolute* L1I MPKI the optimizations
        recover (base minus optimized), not the recovered fraction: a
        workload with almost no baseline misses can recover a large
        fraction of them and still be insensitive in the paper's sense.
        Drifted cells measure adaptation, not steady-state sensitivity,
        and are excluded.
        """
        groups: Dict[str, List[Tuple[float, float]]] = {}
        for cell in self.cells:
            if cell.status == "failed" or cell.drift != "none":
                continue
            groups.setdefault(cell.family, []).append(
                (cell.base_mpki - cell.opt_mpki, cell.recovery_pct)
            )
        ranked = [
            (
                family,
                sum(mpki for mpki, _ in vals) / len(vals),
                sum(pct for _, pct in vals) / len(vals),
                len(vals),
            )
            for family, vals in groups.items()
        ]
        ranked.sort(key=lambda item: -item[1])
        return ranked

    def ordering_ok(self) -> bool:
        """True when layout optimization recovers more MPKI on OLTP
        than on DSS (vacuously true when either family is absent) —
        the paper's headline claim."""
        means = {
            family: mpki
            for family, mpki, _, _ in self.family_sensitivity()
        }
        if "oltp" not in means or "dss" not in means:
            return True
        return means["oltp"] > means["dss"]

    def passes(self) -> bool:
        """The matrix gate: no failures, every check gate green, and
        the OLTP/DSS sensitivity ordering intact."""
        return (
            not self.failed
            and all(c.gate_ok for c in self.cells)
            and self.ordering_ok()
        )

    def to_table(self) -> Table:
        """The per-cell table (``bench-diff``-comparable)."""
        rows = [
            [
                cell.name,
                cell.family,
                cell.hierarchy,
                cell.engine,
                round(cell.base_mpki, 3),
                round(cell.opt_mpki, 3),
                round(cell.recovery_pct, 1),
                int(cell.gate_ok),
            ]
            for cell in self.cells
            if cell.status != "failed"
        ]
        notes = [
            f"{self.simulated} simulated, {self.cached} resumed from "
            f"cache, {len(self.failed)} failed"
        ]
        for family, mpki, pct, count in self.family_sensitivity():
            notes.append(
                f"sensitivity {family}: {mpki:.2f} MPKI recovered "
                f"({pct:.1f}%) over {count} cell(s)"
            )
        return Table(
            title="Scenario matrix: L1I MPKI recovery by cell",
            columns=[
                "scenario", "family", "hierarchy", "engine",
                "base_mpki", "opt_mpki", "recovered_pct", "gate_ok",
            ],
            rows=rows,
            notes=notes,
        )

    def to_document(self) -> Dict:
        """The ``BENCH_scenarios`` payload: the table plus full cells
        and the family ranking (what the report renders from)."""
        from repro.harness.results import table_payload

        document = table_payload(self.to_table())
        document["cells"] = [cell.to_dict() for cell in self.cells]
        document["families"] = [
            {"family": family,
             "mean_recovered_mpki": round(mpki, 3),
             "mean_recovery_pct": round(pct, 2),
             "cells": count}
            for family, mpki, pct, count in self.family_sensitivity()
        ]
        document["ordering_ok"] = int(self.ordering_ok())
        document["gate_ok"] = int(self.passes())
        return document

    def render(self) -> str:
        """Plain-text summary for the CLI."""
        lines = [self.to_table().render()]
        for cell in self.failed:
            lines.append(f"FAILED {cell.name}: {cell.error}")
        verdict = "pass" if self.passes() else "FAIL"
        lines.append(
            f"matrix gate: {verdict} ({len(self.cells)} cells, "
            f"ordering {'ok' if self.ordering_ok() else 'violated'})"
        )
        return "\n".join(lines)


def run_matrix(
    specs: Sequence[ScenarioSpec],
    *,
    store: Optional[ArtifactStore] = None,
    jobs: int = 1,
    fresh: bool = False,
    verify: bool = True,
) -> MatrixResult:
    """Run (or resume) the matrix; returns cells in spec order.

    Args:
        specs: Validated scenario cells (duplicate names rejected).
        store: Artifact store for pipeline products *and* per-cell
            results; without one, nothing persists and every run
            recomputes all cells.
        jobs: Worker processes for the cell fan-out.
        fresh: Ignore (and overwrite) previously completed cells.
        verify: Gate each cell's optimized layout via ``repro.check``.
    """
    specs = [spec.validate() for spec in specs]
    _reject_duplicates(specs, "matrix")
    if not specs:
        raise ScenarioError("run_matrix needs at least one scenario")

    with obs.span("scenarios.run_matrix", cells=len(specs)):
        cached: Dict[str, CellResult] = {}
        if store is not None and not fresh:
            for spec in specs:
                cell = _load_cached_cell(spec, store)
                if cell is not None:
                    cached[spec.name] = cell

        pending = [spec for spec in specs if spec.name not in cached]

        # Warm each distinct pipeline once, serially: parallel workers
        # then only simulate.  (Forked workers inherit the memo, so
        # this pays off even without a store.)
        warmed = set()
        for spec in pending:
            fingerprint = spec.experiment_config().fingerprint()
            if fingerprint in warmed:
                continue
            warmed.add(fingerprint)
            exp = _experiment_for(spec, store)
            _ = exp.trace  # forces codegen + profiling + measurement

        store_root = str(store.root) if store is not None else None
        tasks = [(spec.to_dict(), store_root, verify) for spec in pending]
        computed = {
            cell["name"]: CellResult.from_dict(cell)
            for cell in resilient_map(_run_cell, tasks, jobs=jobs)
        }

        result = MatrixResult(
            cells=[
                cached.get(spec.name) or computed[spec.name]
                for spec in specs
            ]
        )
        obs.counter("scenarios.cells_simulated").inc(result.simulated)
        obs.counter("scenarios.cells_cached").inc(result.cached)
        obs.counter("scenarios.cells_failed").inc(len(result.failed))
        return result
