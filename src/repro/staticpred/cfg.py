"""Intra-procedure control-flow analyses: dominators, loops, reachability.

The static predictor needs three structural facts about every
procedure: which blocks are reachable from the entry (cold-code
classification), which blocks form natural loops and how deeply they
nest (the frequency scaler), and the dominator tree that defines those
loops.  All three come out of one pass object, :class:`CfgInfo`, built
with the Cooper-Harvey-Kennedy iterative dominator algorithm -- the
CFGs here are a few dozen blocks, so the simple-to-verify iterative
form beats Lengauer-Tarjan on every axis that matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir import Procedure


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop of one procedure's CFG.

    Attributes:
        header: Block id of the loop header (dominates the body).
        body: Block ids of the loop, header included.
        back_edges: The ``latch -> header`` edges defining the loop.
    """

    header: int
    body: FrozenSet[int]
    back_edges: Tuple[Tuple[int, int], ...]


class CfgInfo:
    """Dominator tree, natural loops and reachability of one procedure.

    Attributes:
        proc: The analyzed procedure.
        reachable: Block ids reachable from the entry.
        rpo: Reachable blocks in reverse postorder.
        idom: Immediate dominator per reachable block (the entry maps
            to itself).
        back_edges: Edges ``(src, dst)`` where ``dst`` dominates
            ``src`` -- the back edges of natural loops.
        loops: Natural loops, one per header (back edges sharing a
            header are merged, the standard construction).
        depth: Loop nesting depth per block id (0 = not in any loop).
    """

    def __init__(self, proc: Procedure) -> None:
        """Analyze ``proc`` (must belong to a sealed binary)."""
        self.proc = proc
        entry = proc.entry.bid
        succs: Dict[int, Tuple[int, ...]] = {
            b.bid: tuple(b.succs) for b in proc.blocks
        }
        self.reachable: Set[int] = set()
        post: List[int] = []
        stack: List[Tuple[int, int]] = [(entry, 0)]
        self.reachable.add(entry)
        while stack:
            bid, i = stack.pop()
            if i < len(succs[bid]):
                stack.append((bid, i + 1))
                nxt = succs[bid][i]
                if nxt not in self.reachable:
                    self.reachable.add(nxt)
                    stack.append((nxt, 0))
            else:
                post.append(bid)
        self.rpo: List[int] = list(reversed(post))
        self._rpo_index: Dict[int, int] = {
            bid: i for i, bid in enumerate(self.rpo)
        }
        preds: Dict[int, List[int]] = {bid: [] for bid in self.rpo}
        for bid in self.rpo:
            for dst in succs[bid]:
                if dst in self._rpo_index:
                    preds[dst].append(bid)
        self._preds = preds
        self.idom: Dict[int, int] = self._compute_idoms(entry, preds)
        self.back_edges: Set[Tuple[int, int]] = {
            (src, dst)
            for src in self.rpo
            for dst in succs[src]
            if dst in self.reachable and self.dominates(dst, src)
        }
        self.loops: List[NaturalLoop] = self._build_loops(preds)
        self.depth: Dict[int, int] = {bid: 0 for bid in self.rpo}
        for loop in self.loops:
            for bid in loop.body:
                self.depth[bid] += 1
        self._innermost: Dict[int, Optional[NaturalLoop]] = {}
        for bid in self.rpo:
            best: Optional[NaturalLoop] = None
            for loop in self.loops:
                if bid in loop.body and (
                    best is None or len(loop.body) < len(best.body)
                ):
                    best = loop
            self._innermost[bid] = best

    def _compute_idoms(
        self, entry: int, preds: Dict[int, List[int]]
    ) -> Dict[int, int]:
        idom: Dict[int, int] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for bid in self.rpo:
                if bid == entry:
                    continue
                candidates = [p for p in preds[bid] if p in idom]
                if not candidates:
                    continue
                new = candidates[0]
                for other in candidates[1:]:
                    new = self._intersect(new, other, idom)
                if idom.get(bid) != new:
                    idom[bid] = new
                    changed = True
        return idom

    def _intersect(self, a: int, b: int, idom: Dict[int, int]) -> int:
        while a != b:
            while self._rpo_index[a] > self._rpo_index[b]:
                a = idom[a]
            while self._rpo_index[b] > self._rpo_index[a]:
                b = idom[b]
        return a

    def _build_loops(self, preds: Dict[int, List[int]]) -> List[NaturalLoop]:
        by_header: Dict[int, Tuple[Set[int], List[Tuple[int, int]]]] = {}
        for src, header in sorted(self.back_edges):
            body, edges = by_header.setdefault(header, ({header}, []))
            edges.append((src, header))
            work = [src]
            while work:
                bid = work.pop()
                if bid in body:
                    continue
                body.add(bid)
                work.extend(p for p in preds.get(bid, []) if p not in body)
        return [
            NaturalLoop(
                header=header,
                body=frozenset(body),
                back_edges=tuple(sorted(edges)),
            )
            for header, (body, edges) in sorted(by_header.items())
        ]

    def dominates(self, a: int, b: int) -> bool:
        """True when every entry->``b`` path passes through ``a``."""
        if a not in self.idom or b not in self.idom:
            return False
        while True:
            if b == a:
                return True
            parent = self.idom[b]
            if parent == b:
                return False
            b = parent

    def rpo_index(self, bid: int) -> int:
        """Position of a reachable block in reverse postorder."""
        return self._rpo_index[bid]

    def is_retreating(self, src: int, dst: int) -> bool:
        """True for edges flowing against reverse postorder (these
        close cycles; in reducible CFGs they are exactly the back
        edges)."""
        return (
            dst in self._rpo_index
            and src in self._rpo_index
            and self._rpo_index[dst] <= self._rpo_index[src]
        )

    def innermost_loop(self, bid: int) -> Optional[NaturalLoop]:
        """The smallest natural loop containing a block, if any."""
        return self._innermost.get(bid)

    def preds(self, bid: int) -> List[int]:
        """Reachable predecessors of a reachable block."""
        return list(self._preds.get(bid, []))
