"""Ball-Larus-style static branch probability heuristics.

Each heuristic inspects the *structure* around a two-way branch (this
IR carries no opcodes, so every signal is structural) and, when it
applies, votes a calibrated probability for one arm.  Votes are fused
with the Dempster-Shafer evidence combination Wu and Larus used for
static profile estimation::

    combined = p*q / (p*q + (1-p)*(1-q))

The weights below started from the published Ball-Larus numbers and
were recalibrated against this repository's generated OLTP/DSS
binaries; the two deliberate departures are documented in the table.

Setting the environment variable ``REPRO_STATIC_INVERT`` to a
non-empty value other than ``0`` inverts every two-way prediction --
a fault-injection hook CI uses to prove the static-layout quality
gates actually gate.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.ir import BasicBlock, Procedure, Terminator
from repro.staticpred.cfg import CfgInfo

#: Loop-branch heuristic: a branch where one arm re-enters the
#: innermost loop (back edge, or any arm of the loop *header*) keeps
#: iterating.  Ball-Larus: 88%.
LOOP_WEIGHT = 0.88

#: Loop-exit heuristic: a branch inside a loop body with one arm
#: leaving the loop stays in the loop.  Ball-Larus measured 80%;
#: recalibrated down -- mid-body exits in generated OLTP code are
#: early-outs (hash hit, lock fast path) that fire more often than
#: SPEC-style bounds checks.
LOOP_EXIT_WEIGHT = 0.75

#: Call heuristic: prefer the arm whose target block is not a call.
#: Ball-Larus measured 78% on SPEC-style C code, where calls behind
#: branches are error handlers; in call-saturated transaction engines
#: the signal is weak (hot paths *are* call chains), so it is
#: deliberately de-weighted to a nudge.
CALL_WEIGHT = 0.55

#: Return heuristic: prefer the arm that does not immediately return.
#: Ball-Larus: 72%.
RETURN_WEIGHT = 0.72

#: Cold-stub heuristic: prefer the arm that is not a single-entry
#: straight-line chain of bulky code ending in a return -- the shape
#: of banked/inline error handling.  Far stricter than the Ball-Larus
#: guard heuristic, hence the much higher confidence.
STUB_WEIGHT = 0.93

#: Fallthrough heuristic ("forward not taken"): compilers place the
#: expected arm on the fallthrough path of forward branches.
FALLTHROUGH_WEIGHT = 0.60

#: Probabilities are clamped to [1-cap, cap]: certainty is never
#: absolute, and the cap bounds implied loop trip counts (p/(1-p)
#: <= ~32) so flow propagation terminates quickly.  Calibration note:
#: a tighter 0.93 cap under-separates hot inner loops from the warm
#: straight-line shelf and costs several points of layout recovery.
PROB_CAP = 0.97

#: Cold-stub detection: maximum chain length followed, and the minimum
#: total instruction count before a chain counts as error-handling
#: bulk rather than a short ordinary arm.
STUB_MAX_HOPS = 16
STUB_MIN_SIZE = 8

#: (name, weight, applies-when) rows for docs/STATIC.md -- keep in
#: sync with the constants above.
HEURISTIC_TABLE: Tuple[Tuple[str, float, str], ...] = (
    ("loop-branch", LOOP_WEIGHT,
     "one arm is a back edge, or the branch is a loop header"),
    ("loop-exit", LOOP_EXIT_WEIGHT,
     "branch in a loop body with exactly one arm leaving the loop"),
    ("call", CALL_WEIGHT, "one arm's block is a call, the other's is not"),
    ("return", RETURN_WEIGHT,
     "one arm's block returns immediately, the other's does not"),
    ("cold-stub", STUB_WEIGHT,
     "one arm is a single-entry straight chain of >= 8 instructions "
     "ending in a return"),
    ("fallthrough", FALLTHROUGH_WEIGHT,
     "every forward conditional branch (forward-not-taken)"),
)


def invert_enabled() -> bool:
    """True when ``REPRO_STATIC_INVERT`` requests inverted predictions."""
    return os.environ.get("REPRO_STATIC_INVERT", "") not in ("", "0")


def combine(p: float, q: float) -> float:
    """Dempster-Shafer combination of two probability votes."""
    agree = p * q
    return agree / (agree + (1.0 - p) * (1.0 - q))


def _is_cold_stub(start: int, blocks: Dict[int, BasicBlock],
                  pred_count: Dict[int, int]) -> bool:
    """True when ``start`` opens a single-entry straight chain of at
    least :data:`STUB_MIN_SIZE` instructions that ends in a return --
    the compiled shape of inline or banked error-handling code."""
    bid = start
    total = 0
    for _ in range(STUB_MAX_HOPS):
        block = blocks.get(bid)
        if block is None or pred_count.get(bid, 0) > 1:
            return False
        if block.terminator is Terminator.RETURN:
            return total + block.size >= STUB_MIN_SIZE
        if block.terminator not in (
            Terminator.FALLTHROUGH, Terminator.UNCOND_BRANCH
        ):
            return False
        total += block.size
        nxt = block.succs[0]
        nxt_block = blocks.get(nxt)
        if nxt_block is not None and nxt_block.terminator is Terminator.RETURN:
            # Chain drains into a (possibly shared) epilogue: the chain
            # itself is what's cold, the epilogue is not counted.
            return total >= STUB_MIN_SIZE
        bid = nxt
    return False


def _vote_taken(block: BasicBlock, taken: int, fallthrough: int,
                info: CfgInfo, blocks: Dict[int, BasicBlock],
                pred_count: Dict[int, int]) -> float:
    """Fused probability that ``block``'s branch goes to ``taken``."""
    votes: List[float] = []
    loop = info.innermost_loop(block.bid)
    if loop is not None:
        t_in = taken in loop.body
        f_in = fallthrough in loop.body
        if t_in != f_in:
            stay_taken = t_in
            strong = (
                block.bid == loop.header
                or (block.bid, taken if stay_taken else fallthrough)
                in info.back_edges
            )
            weight = LOOP_WEIGHT if strong else LOOP_EXIT_WEIGHT
            votes.append(weight if stay_taken else 1.0 - weight)
    t_block, f_block = blocks[taken], blocks[fallthrough]
    t_call = t_block.terminator is Terminator.CALL
    f_call = f_block.terminator is Terminator.CALL
    if t_call != f_call:
        votes.append(1.0 - CALL_WEIGHT if t_call else CALL_WEIGHT)
    t_ret = t_block.terminator is Terminator.RETURN
    f_ret = f_block.terminator is Terminator.RETURN
    if t_ret != f_ret:
        votes.append(1.0 - RETURN_WEIGHT if t_ret else RETURN_WEIGHT)
    t_stub = _is_cold_stub(taken, blocks, pred_count)
    f_stub = _is_cold_stub(fallthrough, blocks, pred_count)
    if t_stub != f_stub:
        votes.append(1.0 - STUB_WEIGHT if t_stub else STUB_WEIGHT)
    if not info.is_retreating(block.bid, taken):
        votes.append(1.0 - FALLTHROUGH_WEIGHT)
    p = 0.5
    for vote in votes:
        p = combine(p, vote)
    p = min(PROB_CAP, max(1.0 - PROB_CAP, p))
    if invert_enabled():
        p = 1.0 - p
    return p


def branch_probabilities(
    proc: Procedure, info: Optional[CfgInfo] = None
) -> Dict[Tuple[int, int], float]:
    """Static probability of every intra-procedure CFG edge.

    Returns ``(src_bid, dst_bid) -> probability``; each block's
    outgoing probabilities sum to 1 (duplicate successors are
    aggregated).  RETURN blocks contribute nothing.
    """
    if info is None:
        info = CfgInfo(proc)
    blocks = {b.bid: b for b in proc.blocks}
    pred_count: Dict[int, int] = {}
    for block in proc.blocks:
        for dst in block.succs:
            pred_count[dst] = pred_count.get(dst, 0) + 1
    probs: Dict[Tuple[int, int], float] = {}
    for block in proc.blocks:
        if not block.succs:
            continue
        distinct = sorted(set(block.succs))
        if len(distinct) == 1:
            probs[(block.bid, distinct[0])] = 1.0
        elif block.terminator is Terminator.COND_BRANCH:
            taken, fallthrough = block.succs
            p = _vote_taken(block, taken, fallthrough, info, blocks,
                            pred_count)
            probs[(block.bid, taken)] = p
            probs[(block.bid, fallthrough)] = 1.0 - p
        else:  # INDIRECT_JUMP with several targets: uniform by arity
            share = 1.0 / len(block.succs)
            for dst in block.succs:
                probs[(block.bid, dst)] = (
                    probs.get((block.bid, dst), 0.0) + share
                )
    return probs
