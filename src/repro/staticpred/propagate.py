"""Exact integer flow propagation over one procedure's CFG.

Wu-Larus static profile estimation propagates branch probabilities to
block and edge *frequencies*.  The classic formulation works in real
numbers and rounds at the end -- which breaks Kirchhoff conservation
by a little everywhere, and ``repro.check``'s PRF family is exactly
the tool that notices.  This module instead propagates **indivisible
integer flow units**: a block that receives ``u`` units is counted
``u`` times and apportions exactly ``u`` units across its successors
(largest-remainder rounding of the heuristic probabilities), so
``inflow == count == outflow`` holds *exactly* at every block, with
units leaving the procedure only through RETURN sinks.

Loops terminate the propagation naturally: stay-probabilities are
capped below 1 (:data:`repro.staticpred.heuristics.PROB_CAP`), so the
units circulating a loop shrink geometrically.  Two guards make this
robust for arbitrary CFGs:

* at a branch inside a loop that has an exit arm, the in-loop arms
  never receive *all* the units (the rounding bonus can otherwise
  park the last few units in the loop forever);
* a per-block event budget; a block that exceeds it routes units
  straight along the shortest path to a RETURN.  Units in a region
  from which no RETURN is reachable (an infinite loop -- a shape no
  *measured* profile could terminate on either) are counted where
  they stand and sunk; this is the one case that leaves a PRF001
  imbalance, reported via :attr:`ProcFlow.trapped`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir import Procedure, Terminator
from repro.staticpred.cfg import CfgInfo

#: Times a block may apportion normally before it is forced onto the
#: drain path.  Generous: legitimate nested loops re-process their
#: headers once per decay round, pathological cycles burn out here.
MAX_FREE_EVENTS = 512


@dataclass
class ProcFlow:
    """Integer flow solution for one procedure.

    Attributes:
        counts: Execution count per block id.
        edges: Units moved along each intra-procedure CFG edge.
        return_units: Units sunk at each RETURN block (these later
            transfer to call-site continuations).
        trapped: Units sunk at non-RETURN blocks because no RETURN was
            reachable (pathological CFGs only).
    """

    counts: Dict[int, int] = field(default_factory=dict)
    edges: Dict[Tuple[int, int], int] = field(default_factory=dict)
    return_units: Dict[int, int] = field(default_factory=dict)
    trapped: int = 0


def apportion(units: int, probs: List[float]) -> List[int]:
    """Split ``units`` across shares by largest-remainder rounding.

    The parts are non-negative, sum exactly to ``units``, and ties
    break on share order so the result is deterministic.
    """
    total = sum(probs)
    if total <= 0.0:
        norm = [1.0 / len(probs)] * len(probs)
    else:
        norm = [p / total for p in probs]
    quotas = [units * p for p in norm]
    parts = [int(q) for q in quotas]
    short = units - sum(parts)
    if short > 0:
        order = sorted(
            range(len(norm)), key=lambda i: (parts[i] - quotas[i], i)
        )
        for i in order[:short]:
            parts[i] += 1
    return parts


def _exit_successors(
    proc: Procedure,
) -> Tuple[Dict[int, Optional[int]], Dict[int, int]]:
    """Per block: the successor on a shortest path to a RETURN, and
    the hop distance (RETURN blocks are distance 0)."""
    preds: Dict[int, List[int]] = {b.bid: [] for b in proc.blocks}
    for block in proc.blocks:
        for dst in block.succs:
            preds[dst].append(block.bid)
    dist: Dict[int, int] = {}
    queue: List[int] = []
    for block in proc.blocks:
        if block.terminator is Terminator.RETURN:
            dist[block.bid] = 0
            queue.append(block.bid)
    head = 0
    while head < len(queue):
        bid = queue[head]
        head += 1
        for pred in preds[bid]:
            if pred not in dist:
                dist[pred] = dist[bid] + 1
                queue.append(pred)
    exit_succ: Dict[int, Optional[int]] = {}
    for block in proc.blocks:
        best: Optional[int] = None
        for dst in sorted(block.succs):
            if dst in dist and (best is None or dist[dst] < dist[best]):
                best = dst
        exit_succ[block.bid] = best
    return exit_succ, dist


def propagate_units(
    proc: Procedure,
    probs: Dict[Tuple[int, int], float],
    entry_units: int,
    info: Optional[CfgInfo] = None,
) -> ProcFlow:
    """Propagate ``entry_units`` integer flow units through ``proc``.

    ``probs`` comes from
    :func:`repro.staticpred.heuristics.branch_probabilities`.  The
    result conserves flow exactly: every block's count equals its
    inflow and its outflow (RETURN sinks excepted by design).
    """
    flow = ProcFlow()
    if entry_units <= 0:
        return flow
    if info is None:
        info = CfgInfo(proc)
    blocks = {b.bid: b for b in proc.blocks}
    exit_succ, _dist = _exit_successors(proc)

    shares: Dict[int, List[Tuple[int, float]]] = {}
    capped: Dict[int, List[int]] = {}
    for block in proc.blocks:
        if not block.succs:
            continue
        per_dst: Dict[int, float] = {}
        order: List[int] = []
        for dst in block.succs:
            if dst not in per_dst:
                per_dst[dst] = 0.0
                order.append(dst)
            per_dst[dst] += probs.get((block.bid, dst), 0.0)
        shares[block.bid] = [(dst, per_dst[dst]) for dst in order]
        loop = info.innermost_loop(block.bid)
        if loop is not None:
            inside = [i for i, dst in enumerate(order) if dst in loop.body]
            if 0 < len(inside) < len(order):
                capped[block.bid] = inside

    entry = proc.entry.bid
    pending: Dict[int, int] = {entry: entry_units}
    events: Dict[int, int] = {}
    heap: List[int] = [info.rpo_index(entry)]
    queued = {entry}
    while heap:
        bid = info.rpo[heapq.heappop(heap)]
        queued.discard(bid)
        units = pending.pop(bid, 0)
        if units <= 0:
            continue
        flow.counts[bid] = flow.counts.get(bid, 0) + units
        block = blocks[bid]
        if not block.succs:
            flow.return_units[bid] = flow.return_units.get(bid, 0) + units
            continue
        events[bid] = events.get(bid, 0) + 1
        block_shares = shares[bid]
        if events[bid] > MAX_FREE_EVENTS:
            target = exit_succ[bid]
            if target is None:
                flow.trapped += units
                continue
            parts = [units if dst == target else 0
                     for dst, _p in block_shares]
        else:
            parts = apportion(units, [p for _dst, p in block_shares])
            inside = capped.get(bid)
            if inside is not None and sum(parts[i] for i in inside) >= units:
                # Never let the loop keep every unit: move one to the
                # likeliest exit arm so circulation always decays.
                outside = [i for i in range(len(parts)) if i not in inside]
                donor = max(inside, key=lambda i: (parts[i], -i))
                recv = max(outside, key=lambda i: (block_shares[i][1], -i))
                parts[donor] -= 1
                parts[recv] += 1
        for (dst, _p), part in zip(block_shares, parts):
            if part <= 0:
                continue
            key = (bid, dst)
            flow.edges[key] = flow.edges.get(key, 0) + part
            pending[dst] = pending.get(dst, 0) + part
            if dst not in queued:
                queued.add(dst)
                heapq.heappush(heap, info.rpo_index(dst))
    return flow
