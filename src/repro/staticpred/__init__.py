"""Profile-free static layout prediction.

The measured-profile pipeline (Pixie counts -> Spike layouts) has an
operational bottleneck the paper's successors all flag: someone has
to *collect* the profile first.  This package closes the cold-start
gap by synthesizing an estimated :class:`~repro.profiles.Profile`
from control-flow structure alone:

* :mod:`repro.staticpred.cfg` -- dominator trees, natural loops with
  nesting depth, reachability;
* :mod:`repro.staticpred.heuristics` -- Ball-Larus-style branch
  probability heuristics, recalibrated for transaction-engine code;
* :mod:`repro.staticpred.propagate` -- exact integer flow
  propagation (flow-conserving by construction);
* :mod:`repro.staticpred.synthesize` -- the whole-binary driver plus
  measured+static hybrid blending.

Synthesized profiles plug into every consumer of measured profiles:
``SpikeOptimizer``, the scenario matrix (``profile_source`` axis),
the online controller (hybrid drift-detector seeding) and the serve
path (gated static cold-start layouts).  ``repro.check``'s STA lint
family diffs a measured profile against the static prediction.
"""

from repro.staticpred.cfg import CfgInfo, NaturalLoop
from repro.staticpred.heuristics import (
    HEURISTIC_TABLE,
    branch_probabilities,
    invert_enabled,
)
from repro.staticpred.propagate import ProcFlow, apportion, propagate_units
from repro.staticpred.synthesize import (
    MAX_SCC_ROUNDS,
    PROFILE_SOURCES,
    ROOT_UNITS,
    hybrid_profile,
    synthesize_profile,
)

__all__ = [
    "CfgInfo",
    "HEURISTIC_TABLE",
    "MAX_SCC_ROUNDS",
    "NaturalLoop",
    "PROFILE_SOURCES",
    "ProcFlow",
    "ROOT_UNITS",
    "apportion",
    "branch_probabilities",
    "hybrid_profile",
    "invert_enabled",
    "propagate_units",
    "synthesize_profile",
]
