"""Whole-binary synthesis of estimated profiles from static structure.

Gluing the per-procedure pieces together: heuristic branch
probabilities (:mod:`repro.staticpred.heuristics`) feed exact integer
flow propagation (:mod:`repro.staticpred.propagate`), driven across
the call graph in strongly-connected-component topological order.
Every call-graph root (a procedure no other procedure calls) is
seeded with the same unit budget; CALL block counts inject units into
their callees, recursion decays under the capped branch
probabilities and is cut off after a bounded number of rounds.

The synthesized :class:`~repro.profiles.Profile` mirrors what a Pixie
measurement records -- and therefore passes ``repro.check``'s
PRF001-PRF006 untouched:

* intra-procedure transitions carry exact conserving edge counts;
* a CALL block's recorded outflow is the ``call -> callee entry``
  transition (the continuation is *not* an adjacent transition in a
  measured stream: the callee runs in between);
* the continuation's inflow arrives as ``callee return -> caller
  continuation`` transitions, apportioned from each callee's RETURN
  sinks to its call sites by a deterministic greedy transportation
  fill;
* RETURN outflow deficits (root-seed units with nowhere to return
  to) and procedure-entry inflow deficits (root seeds) sit exactly on
  the measurement boundary PRF001 already exempts.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import ProfileError
from repro.ir import Binary, Terminator
from repro.profiles import Profile
from repro.staticpred.cfg import CfgInfo
from repro.staticpred.heuristics import branch_probabilities
from repro.staticpred.propagate import propagate_units

#: Flow units seeded into every call-graph root.  Large enough that
#: heuristic probabilities survive integer rounding several call
#: levels deep; small enough that counts stay far from overflow.
ROOT_UNITS = 8192

#: Injection waves propagated inside one call-graph SCC before
#: recursion is cut off.  Capped branch probabilities decay each wave
#: geometrically, so the residue dropped here is at most a handful of
#: units -- inside the PRF004 measurement slack.
MAX_SCC_ROUNDS = 64

#: Seed divisor for *cold islands*: call-graph roots that contain no
#: loop and make no call.  Code nothing references, doing no work that
#: feeds back into the program, is linker padding / banked cold code,
#: not an entry point -- it gets a trickle of flow instead of a full
#: root seed.  (Real entry points in generated OLTP/DSS binaries all
#: loop and call; see docs/STATIC.md.)
COLD_ROOT_DIVISOR = 256

#: The profile-source axis wired through scenarios, figures, the
#: online loop and the serve path.
PROFILE_SOURCES: Tuple[str, ...] = ("measured", "static", "hybrid")


def _call_graph_sccs(binary: Binary) -> List[List[str]]:
    """Call-graph SCCs in topological (callers-first) order.

    Iterative Tarjan; members of each SCC are returned in link order.
    """
    order = binary.proc_order()
    callees: Dict[str, List[str]] = {name: [] for name in order}
    for block in binary.blocks():
        if block.terminator is Terminator.CALL and block.call_target:
            callees[block.proc_name].append(block.call_target)
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for root in order:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child = work[-1]
            if child == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for i in range(child, len(callees[node])):
                nxt = callees[node][i]
                if nxt not in index:
                    work[-1] = (node, i + 1)
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                position = {name: i for i, name in enumerate(order)}
                component.sort(key=lambda name: position[name])
                sccs.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    sccs.reverse()  # Tarjan emits reverse-topological order
    return sccs


def synthesize_profile(binary: Binary, root_units: int = ROOT_UNITS) -> Profile:
    """Estimate a flow-conserving :class:`~repro.profiles.Profile`
    for a sealed binary from its CFG structure alone.

    Deterministic: the same binary always synthesizes the same
    profile (unless ``REPRO_STATIC_INVERT`` flips the heuristics).
    """
    profile = Profile(binary)
    sccs = _call_graph_sccs(binary)
    scc_of = {name: i for i, scc in enumerate(sccs) for name in scc}
    called: Set[str] = set()
    for block in binary.blocks():
        if block.terminator is Terminator.CALL and block.call_target:
            if scc_of[block.call_target] != scc_of[block.proc_name]:
                called.add(block.call_target)
    infos: Dict[str, CfgInfo] = {}
    probs: Dict[str, Dict[Tuple[int, int], float]] = {}
    entry_pending: Dict[str, int] = {}
    for scc in sccs:
        if all(name not in called for name in scc):
            for name in scc:
                proc = binary.proc(name)
                info = infos[name] = CfgInfo(proc)
                seed = root_units
                if not info.loops and all(
                    block.terminator is not Terminator.CALL
                    for block in proc.blocks
                ):
                    seed = max(1, root_units // COLD_ROOT_DIVISOR)
                entry_pending[name] = seed

    call_counts: Dict[int, int] = {}
    return_units: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for scc in sccs:
        members = set(scc)
        for _round in range(MAX_SCC_ROUNDS):
            progressed = False
            for name in scc:
                units = entry_pending.pop(name, 0)
                if units <= 0:
                    continue
                progressed = True
                proc = binary.proc(name)
                if name not in probs:
                    if name not in infos:
                        infos[name] = CfgInfo(proc)
                    probs[name] = branch_probabilities(proc, infos[name])
                flow = propagate_units(proc, probs[name], units, infos[name])
                for bid, count in flow.counts.items():
                    counts[bid] = counts.get(bid, 0) + count
                for edge, count in flow.edges.items():
                    # A call's continuation is not an adjacent transition
                    # in a measured stream (the callee runs in between):
                    # its slot is taken by call->entry plus return->cont.
                    if binary.block(edge[0]).terminator is Terminator.CALL:
                        continue
                    profile.edge_counts[edge] += count
                for bid, count in flow.return_units.items():
                    return_units[bid] = return_units.get(bid, 0) + count
                for block in proc.blocks:
                    if block.terminator is not Terminator.CALL:
                        continue
                    delta = flow.counts.get(block.bid, 0)
                    if delta <= 0 or block.call_target is None:
                        continue
                    call_counts[block.bid] = (
                        call_counts.get(block.bid, 0) + delta
                    )
                    entry_pending[block.call_target] = (
                        entry_pending.get(block.call_target, 0) + delta
                    )
            if not progressed:
                break
        for name in members:  # recursion residue past the round cap
            entry_pending.pop(name, None)

    for bid, count in counts.items():
        profile.block_counts[bid] = count

    # call -> callee-entry transitions (what the measured stream sees).
    for bid, count in sorted(call_counts.items()):
        target = binary.block(bid).call_target
        if target is not None:
            profile.edge_counts[(bid, binary.entry_bid(target))] += count

    # callee-return -> continuation transitions: greedy transportation
    # fill from each callee's RETURN sinks to its call sites, both in
    # block-id order -- deterministic and exactly demand-bounded.
    sites: Dict[str, List[Tuple[int, int]]] = {}
    for bid, count in sorted(call_counts.items()):
        block = binary.block(bid)
        if block.call_target is not None and count > 0:
            sites.setdefault(block.call_target, []).append(
                (block.succs[0], count)
            )
    for callee, demands in sites.items():
        caps = [
            (block.bid, return_units.get(block.bid, 0))
            for block in binary.proc(callee).blocks
            if block.terminator is Terminator.RETURN
        ]
        ri = 0
        for cont_bid, demand in demands:
            while demand > 0 and ri < len(caps):
                ret_bid, available = caps[ri]
                if available <= 0:
                    ri += 1
                    continue
                moved = min(available, demand)
                profile.edge_counts[(ret_bid, cont_bid)] += moved
                caps[ri] = (ret_bid, available - moved)
                demand -= moved
            if ri >= len(caps):
                break
    return profile


def hybrid_profile(
    measured: Profile, static: Profile, prior_weight: float = 0.25
) -> Profile:
    """Blend a measured profile with a static prior.

    Each side is scaled by an *integer* factor (integer scaling
    preserves its exact flow conservation) sized so the static side
    carries about ``prior_weight`` of the measured side's total block
    weight, then the two are summed.  The result lets drift detectors
    and optimizers start from measurement while the static prior
    keeps statically-obvious structure (loop bodies, cold stubs)
    represented before sampling has covered it.
    """
    if static.binary is not measured.binary:
        raise ProfileError(
            "cannot blend profiles of different binaries"
        )
    if prior_weight <= 0.0:
        raise ProfileError("hybrid prior weight must be positive")
    m_total = max(1, measured.total_blocks_executed)
    s_total = max(1, static.total_blocks_executed)
    # Scale up whichever side is too light for the target ratio.
    m_scale, s_scale = 1, 1
    if prior_weight * m_total >= s_total:
        s_scale = max(1, round(prior_weight * m_total / s_total))
    else:
        m_scale = max(1, round(s_total / (prior_weight * m_total)))
    blended = Profile(measured.binary)
    blended.block_counts = (
        m_scale * measured.block_counts + s_scale * static.block_counts
    )
    for edge, count in measured.edge_counts.items():
        blended.edge_counts[edge] += m_scale * count
    for edge, count in static.edge_counts.items():
        blended.edge_counts[edge] += s_scale * count
    return blended
