"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed binary IR: bad successor wiring, duplicate names, etc."""


class LayoutError(ReproError):
    """A layout is inconsistent with the binary it claims to place."""


class ConfigError(ReproError):
    """An experiment configuration is inconsistent (e.g. a custom
    workload factory without a cache salt to disambiguate it)."""


class ProfileError(ReproError):
    """Profile data is missing or inconsistent with the binary."""


class DatabaseError(ReproError):
    """Base class for mini-DBMS errors."""


class PageError(DatabaseError):
    """Page-level corruption or misuse (bad slot, overflow, checksum)."""


class BufferPoolError(DatabaseError):
    """Buffer pool misuse (unpinning an unpinned page, pool exhaustion)."""


class LockError(DatabaseError):
    """Lock manager failure (deadlock, illegal release)."""


class DeadlockError(LockError):
    """A lock request would deadlock; the transaction should abort."""


class TransactionError(DatabaseError):
    """Transaction protocol misuse (commit of an aborted txn, etc.)."""


class KeyNotFoundError(DatabaseError):
    """A point lookup did not find the requested key."""


class DuplicateKeyError(DatabaseError):
    """An insert collided with an existing unique key."""


class WorkloadError(ReproError):
    """Workload configuration or driver failure."""


class SimulationError(ReproError):
    """Execution/cache/timing simulation misconfiguration."""


class RemovedAPIError(ReproError):
    """A removed legacy entry point was called; the message carries the
    migration hint (the replacement API)."""


class ParallelError(ReproError):
    """A parallel fan-out failed structurally: a worker crashed or a
    task exceeded the hard timeout.  The message names the offending
    task index so sweeps can report which cell hung or died."""


class PipelineError(ReproError):
    """A stage graph is malformed (duplicate stage keys, unknown
    inputs, a dependency cycle) or a runner was asked to execute a
    stage the graph does not declare."""


class StageGateError(PipelineError):
    """A freshly built stage value failed its declared gate hook.
    Cached values that fail the gate silently degrade to a rebuild;
    only a *fresh* build failing is an error the caller must handle
    (fall back, retry, or surface)."""


class ScenarioError(ReproError):
    """A scenario specification is invalid (unknown workload kind,
    incompatible engine/hierarchy pair, malformed matrix file) or a
    matrix run was asked for something it cannot do."""


class ServeError(ReproError):
    """Layout-service failure: protocol violation, unreachable server
    with no fallback layout, or a served artifact failing the gate."""


class ProtocolError(ServeError):
    """A wire message violated the serve protocol (bad frame, unknown
    type, version mismatch, or malformed payload)."""
