"""Joint application+kernel placement (the paper's untried future work).

"A combined code layout optimization of the application and the kernel
may provide more synergistic gains; however, we did not study this."

The simplest synergistic knob is where the kernel image sits relative
to the application in cache-index space: both are independently
optimized, but their hot regions still collide in a (virtually
indexed) instruction cache.  This module picks a kernel image offset
that minimizes the heat overlap between the two hot-set profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import LayoutError
from repro.ir import AddressMap, INSTRUCTION_BYTES


@dataclass
class JointPlacementReport:
    """Outcome of the offset search."""

    cache_bytes: int
    line_bytes: int
    chosen_offset: int
    #: Heat-overlap objective at offset 0 and at the chosen offset.
    overlap_before: float
    overlap_after: float

    @property
    def overlap_reduction(self) -> float:
        if self.overlap_before <= 0:
            return 0.0
        return 1.0 - self.overlap_after / self.overlap_before


def _set_heat(
    amap: AddressMap, block_counts, cache_bytes: int, line_bytes: int
) -> np.ndarray:
    """Execution heat per cache set for one placed binary."""
    nsets = cache_bytes // line_bytes
    heat = np.zeros(nsets, dtype=np.float64)
    counts = np.asarray(block_counts, dtype=np.float64)
    for bid in range(len(amap.addr)):
        weight = counts[bid]
        if weight <= 0 or amap.n_fetch[bid] <= 0:
            continue
        start = int(amap.addr[bid])
        end = start + int(amap.n_fetch[bid]) * INSTRUCTION_BYTES
        first = start // line_bytes
        last = (end - 1) // line_bytes
        for line in range(first, last + 1):
            heat[line % nsets] += weight
    return heat


def choose_kernel_offset(
    app_map: AddressMap,
    app_counts,
    kernel_map: AddressMap,
    kernel_counts,
    cache_bytes: int = 64 * 1024,
    line_bytes: int = 128,
    granularity: int = 8192,
) -> Tuple[int, JointPlacementReport]:
    """Pick a kernel image offset (multiple of ``granularity``, modulo
    the cache) minimizing hot-set overlap with the application.

    Returns ``(offset_bytes, report)``; apply the offset by building
    the combined address map with ``kernel_base = KERNEL_BASE + offset``.
    """
    if cache_bytes % line_bytes or granularity % line_bytes:
        raise LayoutError("cache, line and granularity sizes must nest")
    app_heat = _set_heat(app_map, app_counts, cache_bytes, line_bytes)
    kernel_heat = _set_heat(kernel_map, kernel_counts, cache_bytes, line_bytes)
    lines_per_step = granularity // line_bytes
    steps = cache_bytes // granularity
    overlaps = np.empty(steps, dtype=np.float64)
    for step in range(steps):
        rolled = np.roll(kernel_heat, step * lines_per_step)
        overlaps[step] = float(np.dot(app_heat, rolled))
    best = int(np.argmin(overlaps))
    report = JointPlacementReport(
        cache_bytes=cache_bytes,
        line_bytes=line_bytes,
        chosen_offset=best * granularity,
        overlap_before=float(overlaps[0]),
        overlap_after=float(overlaps[best]),
    )
    return best * granularity, report
