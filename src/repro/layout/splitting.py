"""Fine-grain procedure splitting (Section 2, Figure 1b).

After chaining, each procedure's block order is cut into *code
segments*: "a code segment is ended by an unconditional branch or
return".  Each segment becomes a separate placeable unit (a new
"procedure" in Spike's model), giving the follow-on ordering pass
freedom to separate hot segments from cold ones.

Segments never span chain boundaries: a chain break is exactly the
point where the address assigner must insert an unconditional branch,
so the boundary block is segment-ending by construction.
"""

from __future__ import annotations

from typing import List, Sequence

from repro import obs
from repro.ir import Binary, CodeUnit, SEGMENT_ENDING
from repro.layout.chaining import ChainingResult


def split_chains(
    binary: Binary, chaining: ChainingResult, verify: bool = False
) -> List[CodeUnit]:
    """Split one chained procedure into segment units.

    Returns units in chain order; the unit containing the procedure
    entry block is flagged ``is_entry``.  With ``verify``, the
    partition contract is asserted before returning
    (:func:`repro.check.verify_split_units`).
    """
    entry_bid = binary.proc(chaining.proc_name).entry.bid
    units: List[CodeUnit] = []
    for chain in chaining.chains:
        segment: List[int] = []
        for bid in chain:
            segment.append(bid)
            if binary.block(bid).terminator in SEGMENT_ENDING:
                units.append(_make_unit(chaining.proc_name, len(units), segment, entry_bid))
                segment = []
        if segment:
            units.append(_make_unit(chaining.proc_name, len(units), segment, entry_bid))
    obs.counter("layout.split.procedures").inc()
    obs.counter("layout.split.segments").inc(len(units))
    if verify:
        from repro.check.structural import verify_split_units

        verify_split_units(binary, chaining.proc_name, units)
    return units


def split_procedure_source_order(
    binary: Binary, proc_name: str, verify: bool = False
) -> List[CodeUnit]:
    """Split a procedure's *source-order* blocks into segments.

    Used to study splitting without chaining.
    """
    proc = binary.proc(proc_name)
    entry_bid = proc.entry.bid
    units: List[CodeUnit] = []
    segment: List[int] = []
    for block in proc.blocks:
        segment.append(block.bid)
        if block.terminator in SEGMENT_ENDING:
            units.append(_make_unit(proc_name, len(units), segment, entry_bid))
            segment = []
    if segment:
        units.append(_make_unit(proc_name, len(units), segment, entry_bid))
    if verify:
        from repro.check.structural import verify_split_units

        verify_split_units(binary, proc_name, units)
    return units


def _make_unit(
    proc_name: str, index: int, segment: Sequence[int], entry_bid: int
) -> CodeUnit:
    return CodeUnit(
        name=f"{proc_name}.seg{index}",
        proc_name=proc_name,
        block_ids=tuple(segment),
        is_entry=entry_bid in segment,
    )
