"""Pettis--Hansen procedure ordering (Section 2, Figure 2).

"We select the most heavily weighted edge, record that the two nodes
should be placed adjacently, collapse the two nodes into one, and merge
their edges ... until the graph is reduced to a single node.  When we
merge nodes which contain more than one procedure, we use the weights
in the original (not merged) graph to determine which of the four
possible merge endpoints is best.  In addition, special care is taken
to ensure that we rarely require a branch to span more than the maximum
branch displacement."

Units with no profiled connections (cold code) are appended after the
ordered hot clusters, preserving their original order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.ir import Binary, CodeUnit, INSTRUCTION_BYTES, UnitCallGraph

#: Alpha conditional branches reach +/- 1 MB (21-bit word displacement).
DEFAULT_MAX_DISPLACEMENT = 1 << 20


@dataclass
class OrderingResult:
    """Outcome of the ordering pass."""

    units: List[CodeUnit]
    #: Cluster-merge refusals due to the branch-displacement guard.
    displacement_refusals: int = 0
    #: Number of merge steps performed.
    merges: int = 0


def _unit_sizes(binary: Binary, units: Sequence[CodeUnit]) -> Dict[str, int]:
    sizes = {}
    for unit in units:
        sizes[unit.name] = sum(
            binary.block(b).size for b in unit.block_ids
        ) * INSTRUCTION_BYTES
    return sizes


def _unit_heat(units: Sequence[CodeUnit], binary: Binary, block_counts) -> Dict[str, float]:
    heat = {}
    for unit in units:
        heat[unit.name] = float(
            sum(int(block_counts[b]) * binary.block(b).size for b in unit.block_ids)
        )
    return heat


def order_units(
    binary: Binary,
    units: Sequence[CodeUnit],
    graph: UnitCallGraph,
    block_counts,
    max_displacement: int = DEFAULT_MAX_DISPLACEMENT,
    verify: bool = False,
) -> OrderingResult:
    """Order code units by Pettis--Hansen call-graph coalescing.

    Args:
        binary: The program.
        units: Placeable units (procedures or split segments).
        graph: Unit-level call graph with original profile weights.
        block_counts: Execution counts per block id (orders the final
            clusters hottest-first).
        max_displacement: Merges that would grow a cluster beyond this
            many bytes are refused, keeping intra-cluster branches
            within reach.
        verify: Assert the permutation contract on the result
            (:func:`repro.check.verify_unit_permutation`).
    """
    names = [u.name for u in units]
    original_index = {name: i for i, name in enumerate(names)}
    sizes = _unit_sizes(binary, units)
    heat = _unit_heat(units, binary, block_counts)

    # Cluster state: cluster id -> ordered list of unit names.
    clusters: Dict[int, List[str]] = {i: [name] for i, name in enumerate(names)}
    cluster_of: Dict[str, int] = {name: i for i, name in enumerate(names)}
    cluster_size: Dict[int, int] = {i: sizes[name] for i, name in enumerate(names)}
    adj: Dict[int, Dict[int, float]] = {i: {} for i in clusters}

    heap: List[Tuple[float, int, int, float]] = []
    for a, b, w in graph.edges_by_weight():
        ca, cb = cluster_of[a], cluster_of[b]
        if ca == cb:
            continue
        lo, hi = min(ca, cb), max(ca, cb)
        adj[lo][hi] = adj[lo].get(hi, 0.0) + w
        adj[hi][lo] = adj[hi].get(lo, 0.0) + w
    for lo in adj:
        for hi, w in adj[lo].items():
            if lo < hi:
                heapq.heappush(heap, (-w, lo, hi, w))

    refusals = 0
    merges = 0
    next_id = len(names)
    while heap:
        neg_w, a, b, w = heapq.heappop(heap)
        if a not in clusters or b not in clusters:
            continue  # stale entry
        if adj[a].get(b, 0.0) != w:
            continue  # weight superseded by a merge
        if cluster_size[a] + cluster_size[b] > max_displacement:
            refusals += 1
            # Drop the edge so the pair is never retried.
            adj[a].pop(b, None)
            adj[b].pop(a, None)
            continue
        left, right = _best_orientation(clusters[a], clusters[b], graph)
        merged = left + right
        cid = next_id
        next_id += 1
        clusters[cid] = merged
        cluster_size[cid] = cluster_size[a] + cluster_size[b]
        adj[cid] = {}
        for old in (a, b):
            for other, weight in adj[old].items():
                if other in (a, b):
                    continue
                adj[cid][other] = adj[cid].get(other, 0.0) + weight
        for other, weight in adj[cid].items():
            adj[other].pop(a, None)
            adj[other].pop(b, None)
            adj[other][cid] = weight
            lo, hi = min(cid, other), max(cid, other)
            heapq.heappush(heap, (-weight, lo, hi, weight))
        for name in merged:
            cluster_of[name] = cid
        del clusters[a], clusters[b]
        del adj[a], adj[b]
        del cluster_size[a], cluster_size[b]
        merges += 1

    # Final placement: clusters hottest-first (by total dynamic weight),
    # deterministic tie-break on the earliest original unit index.
    def cluster_key(item):
        cid, members = item
        total_heat = sum(heat[m] for m in members)
        return (-total_heat, min(original_index[m] for m in members))

    ordered_names: List[str] = []
    for _cid, members in sorted(clusters.items(), key=cluster_key):
        ordered_names.extend(members)

    unit_by_name = {u.name: u for u in units}
    obs.counter("layout.order.calls").inc()
    obs.counter("layout.order.merges").inc(merges)
    obs.counter("layout.order.displacement_refusals").inc(refusals)
    result = OrderingResult(
        units=[unit_by_name[n] for n in ordered_names],
        displacement_refusals=refusals,
        merges=merges,
    )
    if verify:
        from repro.check.structural import verify_unit_permutation

        verify_unit_permutation(units, result.units)
    return result


def _best_orientation(
    left: List[str], right: List[str], graph: UnitCallGraph
) -> Tuple[List[str], List[str]]:
    """Pick the best of the four concatenations of two clusters.

    Scored by the *original* graph weight between the two units that
    become adjacent at the joint, as Pettis--Hansen prescribe.
    Orientation priority on ties: L+R, L+rev(R), rev(L)+R,
    rev(L)+rev(R) -- i.e. prefer not reversing anything.
    """
    options = (
        (left, right),
        (left, right[::-1]),
        (left[::-1], right),
        (left[::-1], right[::-1]),
    )
    best = options[0]
    best_score = graph.weight(best[0][-1], best[1][0])
    for option in options[1:]:
        score = graph.weight(option[0][-1], option[1][0])
        if score > best_score:
            best, best_score = option, score
    return best
