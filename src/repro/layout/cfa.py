"""Conflict-free area (CFA) layout -- the software trace cache variant.

The paper implemented "a version of the CFA optimization, which
attempts to reserve a conflict-free area in the instruction cache for
the most frequently executed traces.  However, the footprint for such
traces in our OLTP workload was too large to fit within a reasonably
sized fraction of the cache, and the optimization yielded no gains."

We reproduce that experiment: the hottest units are packed at the start
of the image (mapping to cache sets ``[0, reserved)``); every other
unit is padded so its code never maps into the reserved sets.  When the
hot footprint exceeds the reserved area, the excess spills into the
unreserved region -- the failure mode the paper observed for OLTP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import LayoutError
from repro.ir import Binary, CodeUnit, INSTRUCTION_BYTES, Layout


@dataclass
class CfaReport:
    """What the CFA pass did."""

    cache_bytes: int
    reserved_bytes: int
    hot_units: int
    #: Bytes of hot code that did not fit the reserved area.
    hot_overflow_bytes: int
    #: Padding bytes wasted steering cold code around the reserved sets.
    padding_bytes: int
    #: Cold units too large to avoid the reserved sets entirely.
    oversized_cold_units: int


def cfa_layout(
    binary: Binary,
    units: Sequence[CodeUnit],
    block_counts,
    cache_bytes: int,
    reserved_fraction: float = 0.25,
    alignment: int = 8,
) -> Tuple[Layout, CfaReport]:
    """Build a CFA layout for a given target cache size.

    Args:
        binary: The program.
        units: Placeable units, ideally chained+split segments ("traces").
        block_counts: Execution counts per block id.
        cache_bytes: Target instruction cache size the reservation is
            computed against.
        reserved_fraction: Fraction of the cache reserved for hot code.
    """
    if not 0.0 < reserved_fraction < 1.0:
        raise LayoutError(f"reserved_fraction must be in (0, 1), got {reserved_fraction}")
    reserved = int(cache_bytes * reserved_fraction)

    def unit_bytes(unit: CodeUnit) -> int:
        return sum(binary.block(b).size for b in unit.block_ids) * INSTRUCTION_BYTES

    def unit_heat(unit: CodeUnit) -> float:
        return float(
            sum(int(block_counts[b]) * binary.block(b).size for b in unit.block_ids)
        )

    ranked = sorted(
        units, key=lambda u: (-unit_heat(u), u.name)
    )
    hot: List[CodeUnit] = []
    hot_bytes = 0
    cold: List[CodeUnit] = []
    for unit in ranked:
        size = unit_bytes(unit)
        if unit_heat(unit) > 0 and hot_bytes + size <= reserved:
            hot.append(unit)
            hot_bytes += size
        else:
            cold.append(unit)
    # Hot units that *would* belong in the reserved area but did not fit
    # are the paper's "footprint too large" overflow.
    overflow = sum(
        unit_bytes(u) for u in cold if unit_heat(u) > 0
    )

    # Keep cold units in their incoming order (callers pass an already
    # sensible order, e.g. the Pettis-Hansen result).
    placed: List[CodeUnit] = [u.with_pad(0) for u in hot]
    cursor = hot_bytes
    padding = 0
    oversized = 0
    usable = cache_bytes - reserved
    for unit in cold:
        size = unit_bytes(unit)
        pad = 0
        offset = cursor % cache_bytes
        if offset < reserved:
            pad = reserved - offset
        elif size <= usable and offset + size > cache_bytes:
            # Would wrap into the reserved sets of the next stride.
            pad = (cache_bytes - offset) + reserved
        if size > usable:
            oversized += 1
        placed.append(unit.with_pad(pad))
        padding += pad
        cursor += pad + size
    layout = Layout(units=placed, alignment=alignment, name="cfa")
    report = CfaReport(
        cache_bytes=cache_bytes,
        reserved_bytes=reserved,
        hot_units=len(hot),
        hot_overflow_bytes=overflow,
        padding_bytes=padding,
        oversized_cold_units=oversized,
    )
    return layout, report
