"""Cache-line coloring placement (Hashemi et al. / Kalamaitianos et al.).

The related-work comparator: instead of Pettis-Hansen adjacency, place
each hot unit so its cache *sets* do not collide with the sets of its
call-graph neighbors, inserting padding gaps where necessary.  The
paper's position is that such placement-only schemes (no chaining, no
splitting) are ineffective for OLTP-sized footprints; this module lets
the benchmark suite check that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import LayoutError
from repro.ir import Binary, CodeUnit, INSTRUCTION_BYTES, Layout, UnitCallGraph


@dataclass
class ColoringReport:
    """What the coloring pass did."""

    cache_bytes: int
    line_bytes: int
    hot_units: int
    #: Bytes of padding inserted to steer units apart.
    padding_bytes: int
    #: Hot units that could not avoid all neighbor conflicts.
    unresolved: int


def color_layout(
    binary: Binary,
    units: Sequence[CodeUnit],
    graph: UnitCallGraph,
    block_counts,
    cache_bytes: int = 64 * 1024,
    line_bytes: int = 64,
    search_lines: int = 64,
    alignment: int = 16,
) -> Tuple[Layout, ColoringReport]:
    """Place units hot-first, coloring each against its neighbors.

    Args:
        binary: The program.
        units: Placeable units (whole procedures in the classic papers).
        graph: Call graph whose positive-weight edges define neighbors.
        block_counts: Execution counts per block id.
        cache_bytes / line_bytes: The direct-mapped target cache whose
            set conflicts are being avoided.
        search_lines: How many candidate offsets (in lines) to try
            before accepting the least-bad conflict.
    """
    if cache_bytes % line_bytes:
        raise LayoutError("cache_bytes must be a multiple of line_bytes")
    nsets = cache_bytes // line_bytes

    def unit_bytes(unit: CodeUnit) -> int:
        return sum(binary.block(b).size for b in unit.block_ids) * INSTRUCTION_BYTES

    def unit_heat(unit: CodeUnit) -> float:
        return float(
            sum(int(block_counts[b]) * binary.block(b).size for b in unit.block_ids)
        )

    hot = [u for u in units if unit_heat(u) > 0]
    cold = [u for u in units if unit_heat(u) <= 0]
    hot.sort(key=lambda u: (-unit_heat(u), u.name))

    #: Sets occupied by each placed hot unit.
    placed_sets: Dict[str, Set[int]] = {}
    placed: List[CodeUnit] = []
    cursor = 0
    padding = 0
    unresolved = 0

    def sets_for(address: int, nbytes: int) -> Set[int]:
        first = address // line_bytes
        last = (address + max(nbytes, 1) - 1) // line_bytes
        return {line % nsets for line in range(first, last + 1)}

    for unit in hot:
        nbytes = unit_bytes(unit)
        neighbors = [
            (placed_sets[other.name], graph.weight(unit.name, other.name))
            for other in placed
            if graph.weight(unit.name, other.name) > 0
            and other.name in placed_sets
        ]
        best_offset = 0
        best_cost = None
        for step in range(search_lines):
            address = _align(cursor + step * line_bytes, alignment)
            occupied = sets_for(address, nbytes)
            cost = sum(w * len(occupied & sets_) for sets_, w in neighbors)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_offset = address - cursor
            if cost == 0:
                break
        if best_cost and best_cost > 0:
            unresolved += 1
        address = _align(cursor + best_offset, alignment)
        pad = address - cursor
        placed.append(unit.with_pad(pad) if pad else unit)
        placed_sets[unit.name] = sets_for(address, nbytes)
        padding += pad
        cursor = address + nbytes
    final_units = list(placed) + [u for u in cold]
    layout = Layout(units=final_units, alignment=alignment, name="coloring")
    report = ColoringReport(
        cache_bytes=cache_bytes,
        line_bytes=line_bytes,
        hot_units=len(hot),
        padding_bytes=padding,
        unresolved=unresolved,
    )
    return layout, report


def _align(address: int, alignment: int) -> int:
    rem = address % alignment
    return address + (alignment - rem) if rem else address
