"""The paper's primary contribution: Spike-style code layout optimizations."""

from repro.layout.cfa import CfaReport, cfa_layout
from repro.layout.coloring import ColoringReport, color_layout
from repro.layout.combos import Combo
from repro.layout.joint import JointPlacementReport, choose_kernel_offset
from repro.layout.temporal import build_trg, temporal_order
from repro.layout.chaining import ChainingResult, chain_blocks
from repro.layout.hotcold import split_hot_cold
from repro.layout.ordering import (
    DEFAULT_MAX_DISPLACEMENT,
    OrderingResult,
    order_units,
)
from repro.layout.spike import ALL_COMBOS, PAPER_COMBOS, SpikeOptimizer
from repro.layout.splitting import split_chains, split_procedure_source_order

__all__ = [
    "ALL_COMBOS",
    "CfaReport",
    "Combo",
    "ColoringReport",
    "JointPlacementReport",
    "ChainingResult",
    "DEFAULT_MAX_DISPLACEMENT",
    "OrderingResult",
    "PAPER_COMBOS",
    "SpikeOptimizer",
    "cfa_layout",
    "build_trg",
    "choose_kernel_offset",
    "color_layout",
    "temporal_order",
    "chain_blocks",
    "order_units",
    "split_chains",
    "split_hot_cold",
    "split_procedure_source_order",
]
