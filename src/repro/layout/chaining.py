"""Basic block chaining (Section 2, Figure 1a).

Spike's greedy algorithm: sort flow edges by weight, heaviest first.
For each edge, if the source block has no chain successor yet and the
destination has no chain predecessor yet (and joining would not close a
cycle), chain the two blocks.  The resulting chains are sorted by the
execution count of their first block; the chain containing the
procedure entry is placed first.

Chaining biases conditional branches to be not taken and lets the
address assigner delete unconditional branches whose targets become
adjacent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.ir import FlowGraph, Procedure


@dataclass
class ChainingResult:
    """Chains of one procedure, in placement order.

    ``chains[0]`` always contains the procedure entry block; the rest
    are in decreasing first-block execution count.  ``block_order``
    is the concatenation -- the within-procedure layout order.
    """

    proc_name: str
    chains: List[List[int]]

    @property
    def block_order(self) -> List[int]:
        order: List[int] = []
        for chain in self.chains:
            order.extend(chain)
        return order


class _ChainSet:
    """Union of disjoint chains supporting the greedy edge test."""

    def __init__(self, block_ids: Sequence[int]) -> None:
        # Every block starts as a singleton chain.
        self._next: Dict[int, Optional[int]] = {b: None for b in block_ids}
        self._prev: Dict[int, Optional[int]] = {b: None for b in block_ids}
        self._head: Dict[int, int] = {b: b for b in block_ids}  # block -> chain head

    def can_join(self, src: int, dst: int) -> bool:
        if self._next[src] is not None or self._prev[dst] is not None:
            return False
        # Joining src's chain tail to dst's chain head closes a cycle
        # only if both are in the same chain.
        return self._head[src] != self._head[dst]

    def join(self, src: int, dst: int) -> None:
        self._next[src] = dst
        self._prev[dst] = src
        head = self._head[src]
        # Relabel dst's chain with src's head.
        walker: Optional[int] = dst
        while walker is not None:
            self._head[walker] = head
            walker = self._next[walker]

    def chains(self) -> List[List[int]]:
        """Materialize chains, in first-seen head order."""
        result: List[List[int]] = []
        seen = set()
        for block, prev in self._prev.items():
            if prev is not None or block in seen:
                continue
            chain = []
            walker: Optional[int] = block
            while walker is not None:
                chain.append(walker)
                seen.add(walker)
                walker = self._next[walker]
            result.append(chain)
        return result


def chain_blocks(
    proc: Procedure, graph: FlowGraph, block_counts, verify: bool = False
) -> ChainingResult:
    """Chain the blocks of one procedure.

    Args:
        proc: Procedure to chain (must be sealed -- blocks have ids).
        graph: Its flow graph with profile weights.
        block_counts: Array of execution counts indexed by block id,
            used to order the finished chains.
        verify: Assert the chaining contract (permutation, entry chain
            first) before returning; raises
            :class:`~repro.errors.LayoutError` on violation.
    """
    ids = [b.bid for b in proc.blocks]
    chains = _ChainSet(ids)
    joins = 0
    for edge in graph.edges_by_weight():
        if edge.weight <= 0:
            break  # never chain on unexecuted edges
        if chains.can_join(edge.src, edge.dst):
            chains.join(edge.src, edge.dst)
            joins += 1

    entry = proc.entry.bid
    built = chains.chains()
    obs.counter("layout.chain.procedures").inc()
    obs.counter("layout.chain.blocks").inc(len(ids))
    obs.counter("layout.chain.joins").inc(joins)
    obs.counter("layout.chain.chains").inc(len(built))
    entry_chain = next(c for c in built if entry in c)
    rest = [c for c in built if c is not entry_chain]
    # Decreasing execution count of the chain's first block; ties break
    # on source order (block id) for determinism.
    rest.sort(key=lambda c: (-int(block_counts[c[0]]), c[0]))
    result = ChainingResult(proc_name=proc.name, chains=[entry_chain] + rest)
    if verify:
        from repro.check.structural import verify_chaining

        verify_chaining(proc, result)
    return result
