"""The Spike-style optimization pipelines.

Maps each of the paper's optimization combinations (Figure 7 / 15
x-axes) to a code layout:

* ``base``          -- original link order.
* ``porder``        -- Pettis-Hansen ordering of whole procedures.
* ``chain``         -- basic block chaining inside each procedure.
* ``split``         -- fine-grain splitting without chaining (extra
  ablation, not in the paper's figures).
* ``chain+split``   -- chaining then fine-grain splitting.
* ``chain+porder``  -- chaining then P-H ordering of whole procedures.
* ``all``           -- chaining + fine-grain splitting + P-H ordering of
  the segments (the paper's fully optimized binary).
* ``hotcold``       -- chaining + P-H hot/cold splitting + ordering: the
  algorithm in the stock Spike distribution, kept as a comparator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import LayoutError
from repro.ir import (
    Binary,
    CodeUnit,
    FlowGraph,
    Layout,
    baseline_layout,
    build_unit_call_graph,
    flow_graph_from_block_counts,
    flow_graph_from_edge_counts,
)
from repro.layout.cfa import CfaReport, cfa_layout
from repro.layout.chaining import ChainingResult, chain_blocks
from repro.layout.combos import ALL_COMBOS, PAPER_COMBOS, Combo
from repro.layout.hotcold import split_hot_cold
from repro.layout.ordering import DEFAULT_MAX_DISPLACEMENT, OrderingResult, order_units
from repro.layout.splitting import split_chains, split_procedure_source_order
from repro.profiles import Profile


class SpikeOptimizer:
    """Profile-driven code layout optimizer for one binary."""

    def __init__(
        self,
        binary: Binary,
        profile: Profile,
        proc_alignment: int = 16,
        segment_alignment: int = 4,
        max_displacement: int = DEFAULT_MAX_DISPLACEMENT,
        verify: bool = False,
    ) -> None:
        """Whole-procedure layouts keep the compiler's entry alignment
        (``proc_alignment``); split-segment layouts pack code units
        densely (``segment_alignment``) to maximize line utilization,
        as Spike does once segments become independent units.

        With ``verify=True``, every pass asserts its structural
        contract (``repro.check.structural``) and each finished layout
        must pass the full integrity check
        (:func:`repro.check.verify_layout`) before it is returned."""
        if profile.binary is not binary:
            raise LayoutError("profile does not belong to this binary")
        self.binary = binary
        self.profile = profile
        self.proc_alignment = proc_alignment
        self.segment_alignment = segment_alignment
        self.max_displacement = max_displacement
        self.verify = verify
        self._chain_cache: Optional[Dict[str, ChainingResult]] = None
        self.last_ordering: Optional[OrderingResult] = None

    # -- building blocks -------------------------------------------------

    def flow_graph(self, proc_name: str) -> FlowGraph:
        """Flow graph weighted by measured edges when available,
        otherwise estimated from block counts (the DCPI/kprofile case)."""
        proc = self.binary.proc(proc_name)
        if self.profile.edge_counts:
            return flow_graph_from_edge_counts(
                proc, self.profile.edge_counts, self.profile.block_counts
            )
        return flow_graph_from_block_counts(proc, self.profile.block_counts)

    def chainings(self) -> Dict[str, ChainingResult]:
        """Chaining result per procedure (cached, filled on demand).

        Entries seeded via :meth:`reuse_chainings` are kept as-is;
        only procedures without a cached result are chained against
        this optimizer's profile.
        """
        if self._chain_cache is None:
            self._chain_cache = {}
        cache = self._chain_cache
        counts = self.profile.block_counts
        for name in self.binary.proc_order():
            if name not in cache:
                cache[name] = chain_blocks(
                    self.binary.proc(name),
                    self.flow_graph(name),
                    counts,
                    verify=self.verify,
                )
        return cache

    def reuse_chainings(
        self, source: "SpikeOptimizer", rebuild: Sequence[str]
    ) -> int:
        """Seed the chaining cache from another optimizer's results.

        Incremental re-layout support: chaining dominates layout
        construction cost, and a profile drift usually perturbs only a
        few procedures' flow graphs.  Every chaining already computed
        by ``source`` is adopted except for the procedures named in
        ``rebuild`` (the drifted ones), which will be re-chained
        against *this* optimizer's profile on first use.  Returns the
        number of procedures whose chains were reused.
        """
        if source.binary is not self.binary:
            raise LayoutError(
                "cannot reuse chainings from an optimizer of a different binary"
            )
        if source._chain_cache is None:
            return 0
        skip = set(rebuild)
        if self._chain_cache is None:
            self._chain_cache = {}
        reused = 0
        for name, result in source._chain_cache.items():
            if name in skip or name in self._chain_cache:
                continue
            self._chain_cache[name] = result
            reused += 1
        return reused

    def _proc_units(self, chained: bool) -> List[CodeUnit]:
        units = []
        for name in self.binary.proc_order():
            if chained:
                order = tuple(self.chainings()[name].block_order)
            else:
                order = tuple(self.binary.proc(name).block_ids())
            units.append(
                CodeUnit(name=name, proc_name=name, block_ids=order, is_entry=True)
            )
        return units

    def _split_units(self, chained: bool) -> List[CodeUnit]:
        units: List[CodeUnit] = []
        for name in self.binary.proc_order():
            if chained:
                units.extend(
                    split_chains(
                        self.binary, self.chainings()[name], verify=self.verify
                    )
                )
            else:
                units.extend(
                    split_procedure_source_order(
                        self.binary, name, verify=self.verify
                    )
                )
        return units

    def _hotcold_units(self) -> List[CodeUnit]:
        units: List[CodeUnit] = []
        for name in self.binary.proc_order():
            order = self.chainings()[name].block_order
            units.extend(
                split_hot_cold(
                    self.binary, name, self.profile.block_counts, block_order=order
                )
            )
        return units

    def _alignment_for(self, name: str) -> int:
        split_based = name in ("split", "chain+split", "all", "hotcold", "cfa")
        return self.segment_alignment if split_based else self.proc_alignment

    def _ordered(self, units: Sequence[CodeUnit], name: str) -> Layout:
        graph = build_unit_call_graph(
            self.binary,
            units,
            self.profile.block_counts,
            edge_counts=self.profile.edge_counts or None,
        )
        result = order_units(
            self.binary,
            units,
            graph,
            self.profile.block_counts,
            max_displacement=self.max_displacement,
            verify=self.verify,
        )
        self.last_ordering = result
        return Layout(units=result.units, alignment=self._alignment_for(name), name=name)

    # -- the pipelines ----------------------------------------------------

    def layout(self, combo: str) -> Layout:
        """Produce the layout for one optimization combination.

        ``combo`` may be a :class:`~repro.layout.Combo` member or one of
        the historical strings; unknown names raise a
        :class:`~repro.errors.LayoutError` listing the valid combos.
        """
        combo = Combo.parse(combo).value
        obs.counter("layout.builds").inc()
        with obs.span("layout.build", combo=combo):
            layout = self._build(combo)
        if self.verify:
            from repro.check import verify_layout
            from repro.ir.layout import assign_addresses

            with obs.span("layout.verify", combo=combo):
                verify_layout(
                    self.binary,
                    layout,
                    assign_addresses(self.binary, layout),
                    target=f"{self.binary.name}/{combo}",
                )
        return layout

    def _build(self, combo: str) -> Layout:
        if combo == "base":
            return baseline_layout(self.binary, alignment=self.proc_alignment)
        if combo == "porder":
            return self._ordered(self._proc_units(chained=False), combo)
        if combo == "chain":
            return Layout(
                units=self._proc_units(chained=True),
                alignment=self.proc_alignment,
                name=combo,
            )
        if combo == "split":
            return Layout(
                units=self._split_units(chained=False),
                alignment=self.segment_alignment,
                name=combo,
            )
        if combo == "chain+split":
            return Layout(
                units=self._split_units(chained=True),
                alignment=self.segment_alignment,
                name=combo,
            )
        if combo == "chain+porder":
            return self._ordered(self._proc_units(chained=True), combo)
        if combo == "all":
            return self._ordered(self._split_units(chained=True), combo)
        if combo == "hotcold":
            return self._ordered(self._hotcold_units(), combo)
        raise LayoutError(
            f"unknown optimization combination {combo!r}; "
            f"valid combos: {', '.join(Combo.names())}"
        )

    def layouts(self, combos: Sequence[str] = PAPER_COMBOS) -> Dict[str, Layout]:
        """Layouts for several combinations at once."""
        return {combo: self.layout(combo) for combo in combos}

    def cfa(
        self, cache_bytes: int, reserved_fraction: float = 0.25
    ) -> Tuple[Layout, CfaReport]:
        """The conflict-free-area layout for a target cache size,
        applied on top of chain+split segments ordered by P-H."""
        ordered = self._ordered(self._split_units(chained=True), "all").units
        return cfa_layout(
            self.binary,
            ordered,
            self.profile.block_counts,
            cache_bytes=cache_bytes,
            reserved_fraction=reserved_fraction,
            # 8-byte alignment: dense enough to pack well, but avoids the
            # cross-unit fixups that would shift the carefully placed
            # reserved-set padding.
            alignment=max(8, self.segment_alignment),
        )
