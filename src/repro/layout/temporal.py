"""Temporal-ordering procedure placement (Gloy et al., MICRO'97).

The related-work comparator that replaces call-graph weights with
*temporal* co-occurrence: two units that execute close together in
time want to be placed apart-in-sets / near-in-memory.  We implement
the standard simplification: a sliding window over the unit-level
execution trace builds a Temporal Relationship Graph (TRG), and the
Pettis-Hansen coalescing machinery consumes it instead of the call
graph.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.errors import LayoutError
from repro.ir import Binary, CodeUnit, Layout, UnitCallGraph
from repro.layout.ordering import DEFAULT_MAX_DISPLACEMENT, OrderingResult, order_units


def build_trg(
    binary: Binary,
    units: Sequence[CodeUnit],
    block_streams: Iterable[np.ndarray],
    window: int = 32,
    max_transitions: Optional[int] = 400_000,
) -> UnitCallGraph:
    """Build a Temporal Relationship Graph from executed block streams.

    Each time execution enters a unit, an edge to every distinct unit
    seen within the last ``window`` unit-entries is strengthened.

    Args:
        binary: The program (unused except for validation symmetry).
        units: Placeable units.
        block_streams: Per-process/CPU block-id traces.
        window: Temporal window in distinct unit-entries.
        max_transitions: Cap on processed unit transitions per stream
            (keeps TRG construction bounded on long traces).
    """
    if window < 1:
        raise LayoutError("temporal window must be >= 1")
    unit_of_block: Dict[int, str] = {}
    for unit in units:
        for bid in unit.block_ids:
            unit_of_block[bid] = unit.name
    graph = UnitCallGraph(u.name for u in units)
    for stream in block_streams:
        recent: "OrderedDict[str, None]" = OrderedDict()
        previous = None
        transitions = 0
        for bid in stream.tolist():
            name = unit_of_block.get(bid)
            if name is None or name == previous:
                continue
            previous = name
            transitions += 1
            if max_transitions is not None and transitions > max_transitions:
                break
            for other in recent:
                if other != name:
                    graph.add_weight(name, other, 1.0)
            recent[name] = None
            recent.move_to_end(name)
            if len(recent) > window:
                recent.popitem(last=False)
    return graph


def temporal_order(
    binary: Binary,
    units: Sequence[CodeUnit],
    block_streams: Iterable[np.ndarray],
    block_counts,
    window: int = 32,
    alignment: int = 16,
    max_displacement: int = DEFAULT_MAX_DISPLACEMENT,
) -> Layout:
    """Order units by temporal affinity (Gloy-style) and return a layout."""
    graph = build_trg(binary, units, block_streams, window=window)
    result: OrderingResult = order_units(
        binary, units, graph, block_counts, max_displacement=max_displacement
    )
    return Layout(units=result.units, alignment=alignment, name="temporal")
