"""Pettis--Hansen hot/cold procedure splitting.

This is the splitting algorithm "currently available in the Spike
distribution" that the paper compares its fine-grain splitting against:
each procedure is split into exactly two parts -- a *hot* part holding
the frequently executed blocks and a *cold* part holding the rest --
based on relative execution frequency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir import Binary, CodeUnit


def split_hot_cold(
    binary: Binary,
    proc_name: str,
    block_counts,
    block_order: Optional[Sequence[int]] = None,
    threshold: float = 0.0,
) -> List[CodeUnit]:
    """Split one procedure into hot and cold units.

    Args:
        binary: The program.
        proc_name: Procedure to split.
        block_counts: Execution counts indexed by block id.
        block_order: Within-procedure block order to preserve (defaults
            to source order; pass a chained order to combine with
            chaining).
        threshold: A block is *hot* when its execution count exceeds
            ``threshold`` times the procedure's entry count.  The
            default 0.0 marks every executed block hot.
    """
    proc = binary.proc(proc_name)
    order = list(block_order) if block_order is not None else proc.block_ids()
    entry_count = float(block_counts[proc.entry.bid])
    cutoff = threshold * entry_count
    hot = [b for b in order if float(block_counts[b]) > cutoff]
    cold = [b for b in order if float(block_counts[b]) <= cutoff]
    # The entry block always lives in the hot part so callers land on it
    # even for never-profiled procedures.
    if proc.entry.bid not in hot:
        hot.insert(0, proc.entry.bid)
        cold.remove(proc.entry.bid)
    units = [
        CodeUnit(
            name=f"{proc_name}.hot",
            proc_name=proc_name,
            block_ids=tuple(hot),
            is_entry=True,
        )
    ]
    if cold:
        units.append(
            CodeUnit(
                name=f"{proc_name}.cold",
                proc_name=proc_name,
                block_ids=tuple(cold),
                is_entry=False,
            )
        )
    return units
