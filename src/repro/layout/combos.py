"""The optimization-combination registry.

Historically every API taking a combination ("base", "chain+split",
"all", ...) accepted a bare string and an unknown name surfaced as a
``KeyError`` deep inside the optimizer.  :class:`Combo` names the valid
combinations once; :meth:`Combo.parse` accepts either a :class:`Combo`
member or any of the historical strings and raises a
:class:`~repro.errors.LayoutError` that lists the valid names.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple, Union

from repro.errors import LayoutError


class Combo(str, Enum):
    """One of the paper's optimization combinations.

    Members compare equal to (and serialize as) their historical string
    names, so existing call sites keep passing plain strings.
    """

    BASE = "base"
    PORDER = "porder"
    CHAIN = "chain"
    SPLIT = "split"
    CHAIN_SPLIT = "chain+split"
    CHAIN_PORDER = "chain+porder"
    ALL = "all"
    HOTCOLD = "hotcold"

    def __str__(self) -> str:  # "all", not "Combo.ALL"
        return self.value

    @classmethod
    def parse(cls, value: Union["Combo", str]) -> "Combo":
        """Normalize a combo name, rejecting unknown ones loudly."""
        if isinstance(value, Combo):
            return value
        try:
            return cls(value)
        except ValueError:
            raise LayoutError(
                f"unknown optimization combination {value!r}; "
                f"valid combos: {', '.join(c.value for c in cls)}"
            ) from None

    @classmethod
    def names(cls) -> Tuple[str, ...]:
        """All valid combination names, in definition order."""
        return tuple(c.value for c in cls)


#: The combinations shown on the paper's Figure 7 / Figure 15 x-axes.
PAPER_COMBOS: Tuple[str, ...] = (
    Combo.BASE.value,
    Combo.PORDER.value,
    Combo.CHAIN.value,
    Combo.CHAIN_SPLIT.value,
    Combo.CHAIN_PORDER.value,
    Combo.ALL.value,
)

#: Every supported combination (paper axes plus the two extras).
ALL_COMBOS: Tuple[str, ...] = PAPER_COMBOS + (
    Combo.SPLIT.value,
    Combo.HOTCOLD.value,
)
