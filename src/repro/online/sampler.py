"""Online profile collection: rolling epoch profiles from live traces.

The :class:`OnlineSampler` taps the per-CPU block streams the system
emits while serving traffic and maintains one LBR-style burst sampler
(:class:`~repro.profiles.dcpi.LbrSampler`) per CPU.  At each epoch
boundary :meth:`end_epoch` merges the per-CPU samples into a single
:class:`EpochProfile` and resets the hit counters — but *not* the
sampling phase, which keeps running across the boundary so epoch
slicing never distorts where samples land.

:func:`epoch_streams` slices a recorded
:class:`~repro.execution.trace.SystemTrace` into per-epoch, per-CPU
application streams, which is how the harness replays a measurement
run as if the sampler had been attached live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ProfileError
from repro.execution.trace import SystemTrace
from repro.ir import Binary
from repro.profiles.dcpi import LbrSampler
from repro.profiles.profile import Profile


@dataclass
class EpochProfile:
    """One epoch's merged sampled profile.

    ``reliable`` is False when the epoch produced fewer than the
    sampler's ``min_samples`` PC samples — too little evidence to
    judge drift, let alone retrain a layout.  The controller holds
    the current layout on unreliable epochs.
    """

    epoch: int
    profile: Profile
    samples: int
    reliable: bool


class OnlineSampler:
    """Per-CPU burst samplers feeding rolling epoch profiles."""

    def __init__(
        self,
        binary: Binary,
        cpus: int,
        period: int = 64,
        burst_width: int = 32,
        min_samples: int = 64,
    ) -> None:
        if cpus < 1:
            raise ProfileError(f"need at least one CPU, got {cpus}")
        if min_samples < 0:
            raise ProfileError(f"min_samples must be >= 0, got {min_samples}")
        self.binary = binary
        self.period = period
        self.burst_width = burst_width
        self.min_samples = min_samples
        self._samplers = [
            LbrSampler(binary, period=period, burst_width=burst_width)
            for _ in range(cpus)
        ]
        self._epoch = 0

    @property
    def cpus(self) -> int:
        """Number of per-CPU samplers."""
        return len(self._samplers)

    @property
    def epoch(self) -> int:
        """Index of the epoch currently being collected."""
        return self._epoch

    def observe(self, cpu: int, block_trace: np.ndarray) -> None:
        """Feed one CPU's block stream (any chunk size)."""
        if not 0 <= cpu < len(self._samplers):
            raise ProfileError(
                f"cpu {cpu} out of range (sampler has {len(self._samplers)})"
            )
        self._samplers[cpu].add_stream(block_trace)

    def end_epoch(self) -> EpochProfile:
        """Close the current epoch: merge per-CPU samples and reset
        hit counters (sampling phases keep running)."""
        samples = sum(s.samples_taken for s in self._samplers)
        merged = Profile(self.binary)
        for sampler in self._samplers:
            merged.merge(sampler.take_epoch())
        result = EpochProfile(
            epoch=self._epoch,
            profile=merged,
            samples=samples,
            reliable=samples >= self.min_samples,
        )
        self._epoch += 1
        return result


def epoch_streams(
    trace: SystemTrace, epochs: int
) -> List[List[Tuple[np.ndarray, np.ndarray]]]:
    """Slice a recorded system trace into per-epoch application streams.

    Returns ``[epoch][cpu] -> (blocks, pids)`` where each CPU's
    application-only stream (kernel blocks stripped) is cut into
    ``epochs`` equal-length contiguous slices.  Equal slicing by
    stream position approximates equal wall-clock epochs: every CPU
    advances through its trace at the simulator's uniform rate.
    """
    if epochs < 1:
        raise ProfileError(f"need at least one epoch, got {epochs}")
    per_cpu = []
    for cpu in trace.cpus:
        mask = cpu.blocks < trace.kernel_offset
        blocks = cpu.blocks[mask]
        pids = cpu.pids[mask]
        bounds = np.linspace(0, len(blocks), epochs + 1).astype(np.int64)
        per_cpu.append(
            [
                (blocks[bounds[e]:bounds[e + 1]], pids[bounds[e]:bounds[e + 1]])
                for e in range(epochs)
            ]
        )
    return [[per_cpu[c][e] for c in range(len(per_cpu))] for e in range(epochs)]
