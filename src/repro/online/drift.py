"""Profile drift metrics and the detector that gates re-layout.

All metrics compare *instruction-weight distributions*: a block's
weight is ``count * size`` normalized over the binary, i.e. the
fraction of dynamic instructions it contributes.  That matches what
the layout optimizations actually consume — a block whose count halves
but that executes two instructions matters far less to I-cache
behaviour than a hot 40-instruction loop body shifting.

Three complementary signals:

- :func:`weighted_divergence` — total-variation distance between the
  two weight distributions, at block or procedure granularity.
  Procedure granularity is the detector default: per-block weights of
  a sampled profile are noisy (sampling error spreads over thousands
  of blocks) while per-procedure sums concentrate it, giving a much
  wider margin between sampling noise and a genuine mix shift.
- :func:`hotset_overlap` — Jaccard overlap of the top-K blocks by
  weight.  Catches "same procedures, different paths" drift that
  procedure sums can hide.
- :func:`edge_divergence` — total-variation distance between
  normalized edge-count distributions, falling back to block-level
  weighted divergence when either profile lacks edge counts (plain
  DCPI sampling).  Chaining quality is a function of edge weights, so
  this is the most direct proxy for "would chaining decide
  differently now".

:class:`DriftDetector` combines them into a score in ``[0, 1]`` and
fires at two levels: a *drift* threshold for genuine phase shifts
(retrain from the live epoch alone) and a lower *refresh* threshold
(retrain from everything accumulated since the last swap — the usual
escape from a layout trained on a transition epoch that straddled the
shift).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ProfileError
from repro.profiles.profile import Profile

#: Granularities accepted by :func:`weighted_divergence`.
GRANULARITIES = ("block", "proc")


def _block_weights(profile: Profile) -> np.ndarray:
    sizes = np.array(
        [b.size for b in profile.binary.blocks()], dtype=np.float64
    )
    weights = profile.block_counts.astype(np.float64) * sizes
    total = weights.sum()
    return weights / total if total > 0 else weights


def _proc_of_block(binary) -> np.ndarray:
    index = {name: i for i, name in enumerate(binary.proc_order())}
    return np.array(
        [index[b.proc_name] for b in binary.blocks()], dtype=np.int64
    )


def _weights(profile: Profile, granularity: str) -> np.ndarray:
    if granularity not in GRANULARITIES:
        raise ProfileError(
            f"unknown divergence granularity {granularity!r}; "
            f"valid: {', '.join(GRANULARITIES)}"
        )
    weights = _block_weights(profile)
    if granularity == "proc":
        binary = profile.binary
        weights = np.bincount(
            _proc_of_block(binary),
            weights=weights,
            minlength=len(binary.proc_order()),
        )
    return weights


def _check_same_binary(p: Profile, q: Profile) -> None:
    if p.binary is not q.binary:
        raise ProfileError("cannot compare profiles of different binaries")


def weighted_divergence(
    p: Profile, q: Profile, granularity: str = "block"
) -> float:
    """Total-variation distance between instruction-weight
    distributions; 0 for proportionally identical profiles, 1 for
    disjoint ones.  Symmetric.
    """
    _check_same_binary(p, q)
    return 0.5 * float(
        np.abs(_weights(p, granularity) - _weights(q, granularity)).sum()
    )


def hotset(profile: Profile, k: int = 64) -> Set[int]:
    """The (at most) ``k`` hottest block ids by instruction weight."""
    weights = _block_weights(profile)
    top = np.argsort(-weights, kind="stable")[:k]
    return {int(b) for b in top if weights[b] > 0}


def hotset_overlap(p: Profile, q: Profile, k: int = 64) -> float:
    """Jaccard overlap of the two profiles' top-``k`` hot sets.

    1.0 when the hot sets coincide (including both empty), 0.0 when
    disjoint.
    """
    _check_same_binary(p, q)
    a, b = hotset(p, k), hotset(q, k)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def edge_divergence(p: Profile, q: Profile) -> float:
    """Total-variation distance between normalized edge-count
    distributions.

    When either profile has no edge counts (plain DCPI sampling),
    falls back to block-level :func:`weighted_divergence` so the
    signal degrades rather than disappears.
    """
    _check_same_binary(p, q)
    if not p.edge_counts or not q.edge_counts:
        return weighted_divergence(p, q, granularity="block")
    edges = set(p.edge_counts) | set(q.edge_counts)
    pw = np.array([p.edge_counts.get(e, 0) for e in edges], dtype=np.float64)
    qw = np.array([q.edge_counts.get(e, 0) for e in edges], dtype=np.float64)
    pt, qt = pw.sum(), qw.sum()
    if pt > 0:
        pw /= pt
    if qt > 0:
        qw /= qt
    return 0.5 * float(np.abs(pw - qw).sum())


def drift_score(p: Profile, q: Profile, top_k: int = 64) -> float:
    """Combined drift score in ``[0, 1]``.

    An even blend of procedure-level divergence (the high
    signal-to-noise phase signal), hot-set turnover, and edge
    divergence (the chaining-quality proxy).  On the phased OLTP
    workload the stationary sampling-noise floor sits around 0.15 and
    a genuine TPC-B → DSS mix shift scores 0.55–0.65.
    """
    proc = weighted_divergence(p, q, granularity="proc")
    turnover = 1.0 - hotset_overlap(p, q, k=top_k)
    edge = edge_divergence(p, q)
    return (proc + turnover + edge) / 3.0


def drifted_procedures(
    p: Profile, q: Profile, coverage: float = 0.9
) -> List[str]:
    """Procedures responsible for the bulk of the weight shift.

    Ranks procedures by absolute instruction-weight change between the
    two profiles and returns the smallest prefix covering ``coverage``
    of the total change — the set worth re-laying-out incrementally.
    """
    _check_same_binary(p, q)
    if not 0.0 < coverage <= 1.0:
        raise ProfileError(f"coverage must be in (0, 1], got {coverage}")
    delta = np.abs(_weights(p, "proc") - _weights(q, "proc"))
    total = delta.sum()
    if total <= 0:
        return []
    order = np.argsort(-delta, kind="stable")
    names = p.binary.proc_order()
    picked: List[str] = []
    covered = 0.0
    for i in order:
        if delta[i] <= 0:
            break
        picked.append(names[int(i)])
        covered += delta[i]
        if covered >= coverage * total:
            break
    return picked


def refresh_score(p: Profile, q: Profile) -> float:
    """Drift score for the *refresh* (residual-drift) comparison.

    Averages procedure-level and edge divergence only.  Hot-set
    turnover is deliberately excluded: the tail of a top-K hot set
    churns under sampling noise (Jaccard turnover floor ~0.2-0.3),
    which would drown the residual-drift signal this comparison
    exists to catch (~0.18-0.32 on the phased OLTP workload, against
    a proc+edge noise floor of ~0.10-0.13).
    """
    proc = weighted_divergence(p, q, granularity="proc")
    edge = edge_divergence(p, q)
    return (proc + edge) / 2.0


@dataclass
class DriftReport:
    """What the detector saw at one epoch boundary."""

    score: float
    proc_divergence: float
    hotset_turnover: float
    edge_divergence: float
    drifted: bool
    refresh: bool
    refresh_score: float = 0.0

    @property
    def fired(self) -> bool:
        """True when either level fired (a re-layout should happen)."""
        return self.drifted or self.refresh


class DriftDetector:
    """Compares live epoch profiles against the profile the current
    layout was trained on.

    Two firing levels:

    - ``score(live, reference) > threshold`` — a phase shift; the
      caller should retrain from the live profile alone and
      :meth:`rebase` onto it.
    - otherwise, ``refresh_score(accumulated, reference) >
      refresh_threshold`` where *accumulated* merges every live
      profile seen since the last rebase — residual drift.  A layout
      trained on a transition epoch (half old mix, half new) scores
      below the drift threshold against a pure new-mix epoch, but the
      accumulated evidence crosses the refresh bar within an epoch;
      retraining from the accumulation also rides the extra samples
      to a better layout.
    """

    def __init__(
        self,
        reference: Profile,
        threshold: float = 0.40,
        refresh_threshold: float = 0.16,
        top_k: int = 64,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ProfileError(f"threshold must be in (0, 1], got {threshold}")
        if not 0.0 < refresh_threshold <= threshold:
            raise ProfileError(
                "refresh_threshold must be in (0, threshold], got "
                f"{refresh_threshold} (threshold={threshold})"
            )
        self.reference = reference
        self.threshold = threshold
        self.refresh_threshold = refresh_threshold
        self.top_k = top_k
        self._accumulated: Optional[Profile] = None

    def observe(self, live: Profile) -> DriftReport:
        """Score one epoch's live profile against the reference."""
        _check_same_binary(self.reference, live)
        proc = weighted_divergence(self.reference, live, granularity="proc")
        turnover = 1.0 - hotset_overlap(self.reference, live, k=self.top_k)
        edge = edge_divergence(self.reference, live)
        score = (proc + turnover + edge) / 3.0
        drifted = score > self.threshold
        refresh = False
        acc_score = 0.0
        if not drifted:
            self._accumulate(live)
            acc_score = refresh_score(self.reference, self._accumulated)
            refresh = acc_score > self.refresh_threshold
        return DriftReport(
            score=score,
            proc_divergence=proc,
            hotset_turnover=turnover,
            edge_divergence=edge,
            drifted=drifted,
            refresh=refresh,
            refresh_score=acc_score,
        )

    def _accumulate(self, live: Profile) -> None:
        if self._accumulated is None:
            self._accumulated = Profile(live.binary)
        self._accumulated.merge(live)

    @property
    def accumulated(self) -> Optional[Profile]:
        """Merged live profiles since the last rebase (or None)."""
        return self._accumulated

    def rebase(self, reference: Profile) -> None:
        """Adopt a new reference (after a re-layout) and restart the
        accumulation window."""
        _check_same_binary(self.reference, reference)
        self.reference = reference
        self._accumulated = None
