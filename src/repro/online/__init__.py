"""Online profiling and adaptive re-layout.

Closes the paper's profile -> layout loop at runtime: burst-sampled
rolling epoch profiles (:mod:`~repro.online.sampler`), drift detection
(:mod:`~repro.online.drift`), incremental re-layout
(:mod:`~repro.online.relayout`), the controller tying them together
(:mod:`~repro.online.controller`), and the static-decay vs
adaptive-recovery experiment (:mod:`~repro.online.experiment`).
"""

from repro.online.controller import ACTIONS, AdaptiveController, EpochDecision
from repro.online.drift import (
    DriftDetector,
    DriftReport,
    drift_score,
    drifted_procedures,
    edge_divergence,
    hotset_overlap,
    refresh_score,
    weighted_divergence,
)
from repro.online.experiment import (
    EpochRow,
    OnlineConfig,
    OnlineReport,
    phased_experiment_config,
    run_online_experiment,
)
from repro.online.relayout import AdaptiveRelayout, RelayoutResult
from repro.online.sampler import EpochProfile, OnlineSampler, epoch_streams

__all__ = [
    "ACTIONS",
    "AdaptiveController",
    "AdaptiveRelayout",
    "DriftDetector",
    "DriftReport",
    "EpochDecision",
    "EpochProfile",
    "EpochRow",
    "OnlineConfig",
    "OnlineReport",
    "OnlineSampler",
    "RelayoutResult",
    "drift_score",
    "drifted_procedures",
    "edge_divergence",
    "epoch_streams",
    "hotset_overlap",
    "phased_experiment_config",
    "refresh_score",
    "run_online_experiment",
    "weighted_divergence",
]
