"""The online-adaptation experiment: static decay vs adaptive recovery.

Drives a phase-shifting TPC-B -> DSS workload through the standard
pipeline and replays the measurement trace epoch by epoch under four
arms:

``static``
    The offline layout trained on the TPC-B profiling run — the
    paper's deployment model, never updated.
``adaptive``
    The :class:`~repro.online.controller.AdaptiveController` loop:
    burst-sampled epoch profiles, drift detection, incremental
    re-layout.  Layouts deploy with one epoch of lag.
``reprofiled``
    Offline re-profiling, idealized: after every epoch the full
    instrumented (Pixie) profile of that epoch builds a fresh layout,
    deployed with the same one-epoch lag the adaptive loop pays.
    This is the "freshly re-profiled offline layout" the adaptive
    arm is judged against.
``oracle``
    The same exact per-epoch profile *without* the deployment lag
    (layout trained on the epoch it is measured on) — an upper bound
    no online scheme can beat.

Only the application image adapts; kernel code is out of scope for
the online loop (the paper's kernel layouts are also offline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cache import CacheGeometry
from repro.errors import ConfigError
from repro.sim import MemoryHierarchy, simulate
from repro.execution import SystemConfig
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.ir import AddressMap, assign_addresses
from repro.layout import SpikeOptimizer
from repro.online.controller import AdaptiveController
from repro.online.relayout import AdaptiveRelayout
from repro.online.sampler import OnlineSampler, epoch_streams
from repro.osmodel import KernelCodeConfig
from repro.profiles import PixieProfiler
from repro.progen import AppCodeConfig
from repro.workloads import TpcbConfig
from repro.workloads.phased import Phase, PhasedConfig, PhasedWorkload
from repro.workloads.tpcb import TpcbWorkload


@dataclass
class OnlineConfig:
    """Knobs of the online adaptation loop and its evaluation."""

    #: Number of equal-length epochs the measurement run is cut into.
    epochs: int = 6
    #: PC-sampling period (instructions between samples).
    period: int = 64
    #: Branch-burst length captured at each sample.
    burst_width: int = 32
    #: Hard drift threshold (phase shift -> retrain from live epoch).
    threshold: float = 0.40
    #: Residual-drift threshold (accumulated vs reference).
    refresh_threshold: float = 0.16
    #: Hot-set size for the turnover component of the drift score.
    top_k: int = 64
    #: Minimum PC samples for an epoch to be acted on.
    min_samples: int = 64
    #: Optimization combination the layouts are built with.
    combo: str = "all"
    #: Profile the deployed offline layout and the controller's
    #: reference profile come from: ``measured``, ``static`` or
    #: ``hybrid``.  ``hybrid`` seeds the drift detector with the
    #: static prior, so the first epoch can already be judged against
    #: a structured reference instead of waiting out a full sample
    #: window; ``static`` models a cold-start deployment that never
    #: ran a profiling pass at all.
    profile_source: str = "measured"
    #: TPC-B transactions each client issues before shifting to DSS.
    shift_after: int = 5
    #: I-cache geometry the epochs are measured against.
    cache_bytes: int = 16 * 1024
    line_bytes: int = 64
    associativity: int = 2

    def __post_init__(self) -> None:
        if self.epochs < 2:
            raise ConfigError(
                f"online experiment needs >= 2 epochs, got {self.epochs}"
            )
        if self.shift_after < 1:
            raise ConfigError(
                f"shift_after must be >= 1, got {self.shift_after}"
            )
        from repro.staticpred import PROFILE_SOURCES

        if self.profile_source not in PROFILE_SOURCES:
            raise ConfigError(
                f"unknown profile source {self.profile_source!r}; "
                f"valid sources: {', '.join(PROFILE_SOURCES)}"
            )

    @property
    def geometry(self) -> CacheGeometry:
        """The measurement I-cache geometry."""
        return CacheGeometry(self.cache_bytes, self.line_bytes, self.associativity)


@dataclass
class EpochRow:
    """Per-epoch measurements across the four arms."""

    epoch: int
    instructions: int
    static_mpki: float
    adaptive_mpki: float
    reprofiled_mpki: float
    oracle_mpki: float
    drift_score: float
    action: str
    rebuilt_procs: int
    reused_chains: int

    @property
    def adaptive_vs_reprofiled(self) -> float:
        """Adaptive-arm MPKI relative to fresh offline re-profiling."""
        return self.adaptive_mpki / max(self.reprofiled_mpki, 1e-12)

    @property
    def static_vs_reprofiled(self) -> float:
        """Static-arm MPKI relative to fresh offline re-profiling."""
        return self.static_mpki / max(self.reprofiled_mpki, 1e-12)


@dataclass
class OnlineReport:
    """Epoch-by-epoch results of one online-adaptation run."""

    config: OnlineConfig
    rows: List[EpochRow] = field(default_factory=list)
    swaps: int = 0

    @property
    def final(self) -> EpochRow:
        """The last epoch's row (the post-shift steady state)."""
        return self.rows[-1]

    @property
    def recovery_ratio(self) -> float:
        """Final-epoch adaptive miss rate relative to offline
        re-profiling (1.0 = fully recovered)."""
        return self.final.adaptive_vs_reprofiled

    @property
    def decay_ratio(self) -> float:
        """Final-epoch static miss rate relative to offline
        re-profiling — how far the never-updated layout decayed."""
        return self.final.static_vs_reprofiled

    def passes(self, margin: float = 1.10) -> bool:
        """The ISSUE acceptance: after the drift the adaptive layout is
        within ``margin`` of offline re-profiling and no worse than the
        decayed static layout."""
        final = self.final
        return (
            self.recovery_ratio <= margin
            and final.adaptive_mpki <= final.static_mpki
        )

    def to_dict(self) -> Dict:
        """The report as a JSON-ready dict (the ``--json`` CLI form)."""
        return {
            "config": {
                "epochs": self.config.epochs,
                "period": self.config.period,
                "burst_width": self.config.burst_width,
                "threshold": self.config.threshold,
                "refresh_threshold": self.config.refresh_threshold,
                "top_k": self.config.top_k,
                "min_samples": self.config.min_samples,
                "combo": self.config.combo,
                "profile_source": self.config.profile_source,
                "shift_after": self.config.shift_after,
                "cache_bytes": self.config.cache_bytes,
                "line_bytes": self.config.line_bytes,
                "associativity": self.config.associativity,
            },
            "epochs": [
                {
                    "epoch": r.epoch,
                    "instructions": r.instructions,
                    "static_mpki": round(r.static_mpki, 4),
                    "adaptive_mpki": round(r.adaptive_mpki, 4),
                    "reprofiled_mpki": round(r.reprofiled_mpki, 4),
                    "oracle_mpki": round(r.oracle_mpki, 4),
                    "drift_score": round(r.drift_score, 4),
                    "action": r.action,
                    "rebuilt_procs": r.rebuilt_procs,
                    "reused_chains": r.reused_chains,
                }
                for r in self.rows
            ],
            "swaps": self.swaps,
            "recovery_ratio": round(self.recovery_ratio, 4),
            "decay_ratio": round(self.decay_ratio, 4),
        }

    def render(self) -> str:
        """The human-readable epoch-by-epoch four-arm table."""
        lines = [
            "online adaptation: TPC-B -> DSS phase shift "
            f"({self.config.epochs} epochs, period={self.config.period}, "
            f"combo={self.config.combo})",
            "",
            f"{'epoch':>5}  {'instr':>8}  {'static':>7}  {'adaptive':>8}  "
            f"{'reprof':>7}  {'oracle':>7}  {'score':>6}  {'action':<11}  "
            f"{'ad/rp':>6}  {'st/rp':>6}",
        ]
        lines.append("-" * len(lines[-1]))
        for r in self.rows:
            lines.append(
                f"{r.epoch:>5}  {r.instructions:>8}  {r.static_mpki:>7.3f}  "
                f"{r.adaptive_mpki:>8.3f}  {r.reprofiled_mpki:>7.3f}  "
                f"{r.oracle_mpki:>7.3f}  {r.drift_score:>6.3f}  "
                f"{r.action:<11}  {r.adaptive_vs_reprofiled:>6.3f}  "
                f"{r.static_vs_reprofiled:>6.3f}"
            )
        lines.append("")
        lines.append(
            f"layout swaps: {self.swaps}; final epoch: adaptive at "
            f"{self.recovery_ratio:.3f}x offline re-profiling, static "
            f"decayed to {self.decay_ratio:.3f}x (miss rates are "
            f"misses/1k instructions; all arms share one trace)"
        )
        return "\n".join(lines) + "\n"


def phased_experiment_config(
    shift_after: int = 5, quick: bool = True, cache_salt: str = "online-v1"
) -> ExperimentConfig:
    """An experiment whose profiling run is pure TPC-B but whose
    measurement run shifts each client to DSS after ``shift_after``
    transactions — the layout trains on a mix that then drifts away.
    """

    def factory(tpcb: TpcbConfig, seed_offset: int):
        if seed_offset == 0:  # profiling run: what the paper trains on
            return TpcbWorkload(tpcb)
        return PhasedWorkload(
            PhasedConfig(
                tpcb=tpcb,
                phases=(Phase("tpcb", shift_after), Phase("dss", 0)),
            )
        )

    salt = f"{cache_salt}-shift{shift_after}"
    if quick:
        return ExperimentConfig(
            app=AppCodeConfig(
                scale=1.0, filler_routines=120, filler_instructions=60_000
            ),
            kernel=KernelCodeConfig(
                scale=1.0, filler_routines=20, filler_instructions=8_000
            ),
            tpcb=TpcbConfig(branches=8, accounts_per_branch=100),
            system=SystemConfig(cpus=2, processes_per_cpu=4),
            profile_transactions=60,
            measure_transactions=150,
            warmup_transactions=10,
            pool_capacity=1024,
            workload_factory=factory,
            cache_salt=f"{salt}-quick",
        )
    return ExperimentConfig(workload_factory=factory, cache_salt=salt)


def run_online_experiment(
    exp: Experiment, config: Optional[OnlineConfig] = None
) -> OnlineReport:
    """Replay the experiment's measurement trace epoch by epoch through
    the online adaptation loop; returns the four-arm report."""
    config = config or OnlineConfig()
    binary = exp.app.binary
    geometry = config.geometry
    trace = exp.trace
    epochs = epoch_streams(trace, config.epochs)

    static_map = assign_addresses(
        binary, exp.layout_for(config.combo, config.profile_source)
    )
    relayout = AdaptiveRelayout(
        binary, combo=config.combo, store=exp.store, runlog=exp.runlog
    )
    controller = AdaptiveController(
        binary,
        exp.profile_for(config.profile_source),
        relayout,
        threshold=config.threshold,
        refresh_threshold=config.refresh_threshold,
        top_k=config.top_k,
    )
    sampler = OnlineSampler(
        binary,
        cpus=len(trace.cpus),
        period=config.period,
        burst_width=config.burst_width,
        min_samples=config.min_samples,
    )

    def measure(amap: AddressMap, streams) -> "tuple[float, int]":
        spans = [amap.expand_spans(blocks) for blocks, _pids in streams]
        result = simulate(spans, MemoryHierarchy.l1i_only(geometry))
        return result.mpki, result.instructions

    report = OnlineReport(config=config)
    reprofiled_map = static_map  # deploys exact profiles one epoch late
    for epoch_index, streams in enumerate(epochs):
        pixie = PixieProfiler(binary)
        for cpu, (blocks, pids) in enumerate(streams):
            sampler.observe(cpu, blocks)
            for pid in np.unique(pids):
                pixie.add_stream(blocks[pids == pid])
        exact = pixie.profile()
        oracle_map = assign_addresses(
            binary, SpikeOptimizer(binary, exact).layout(config.combo)
        )

        static_mpki, instructions = measure(static_map, streams)
        adaptive_mpki, _ = measure(controller.address_map, streams)
        reprofiled_mpki, _ = measure(reprofiled_map, streams)
        oracle_mpki, _ = measure(oracle_map, streams)
        reprofiled_map = oracle_map

        decision = controller.end_epoch(sampler.end_epoch())
        rebuilt = decision.relayout.rebuilt_procs if decision.relayout else ()
        report.rows.append(
            EpochRow(
                epoch=epoch_index,
                instructions=instructions,
                static_mpki=static_mpki,
                adaptive_mpki=adaptive_mpki,
                reprofiled_mpki=reprofiled_mpki,
                oracle_mpki=oracle_mpki,
                drift_score=decision.report.score if decision.report else 0.0,
                action=decision.action,
                rebuilt_procs=(
                    binary.num_procedures if rebuilt == ("*",) else len(rebuilt)
                ),
                reused_chains=(
                    decision.relayout.reused_chains if decision.relayout else 0
                ),
            )
        )
    report.swaps = controller.swaps
    return report
