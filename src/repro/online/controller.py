"""The adaptive controller: closes the profile -> layout loop.

One :class:`AdaptiveController` owns the layout an application runs
under.  At every epoch boundary it receives the epoch's sampled
profile, consults the :class:`~repro.online.drift.DriftDetector`, and
takes one of four actions:

``swap``
    The drift score crossed the hard threshold: a phase shift.  The
    layout is retrained from the live epoch alone and the detector
    rebases onto it.
``refresh``
    Residual drift: the profiles accumulated since the last rebase
    diverge from the reference the current layout was trained on —
    typically because that layout was trained on a transition epoch
    straddling a shift.  Retrain from the accumulation (pure new-mix
    samples) and rebase.
``consolidate``
    Stationary: grow the training window.  The layout is retrained
    from reference + accumulation merged, riding the extra samples
    toward the quality of an exact profile.  Chain reuse makes this
    cheap: almost nothing drifted, so almost every chain is adopted.
``hold``
    The epoch produced too few samples to act on (sampler marked it
    unreliable).  Keep the current layout and reference.

Layouts always deploy with one epoch of lag — the rebuild happens at
the boundary, so epoch ``e``'s traffic runs under the layout chosen
at the end of epoch ``e-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.ir import AddressMap, Binary, Layout
from repro.online.drift import DriftDetector, DriftReport
from repro.online.relayout import AdaptiveRelayout, RelayoutResult
from repro.online.sampler import EpochProfile
from repro.profiles.profile import Profile

#: Actions a controller can take at an epoch boundary.
ACTIONS = ("swap", "refresh", "consolidate", "hold")


@dataclass
class EpochDecision:
    """What the controller did at one epoch boundary."""

    epoch: int
    action: str
    report: Optional[DriftReport]
    relayout: Optional[RelayoutResult]

    @property
    def swapped(self) -> bool:
        """True when the layout was replaced in response to drift
        (consolidation refines the same layout, hold keeps it)."""
        return self.action in ("swap", "refresh")


class AdaptiveController:
    """Drives drift detection and re-layout over a stream of epochs."""

    def __init__(
        self,
        binary: Binary,
        initial_profile: Profile,
        relayout: AdaptiveRelayout,
        threshold: float = 0.40,
        refresh_threshold: float = 0.16,
        top_k: int = 64,
    ) -> None:
        self.binary = binary
        self.relayout = relayout
        self.detector = DriftDetector(
            initial_profile,
            threshold=threshold,
            refresh_threshold=refresh_threshold,
            top_k=top_k,
        )
        self._current = relayout.rebuild(initial_profile)
        self.decisions: List[EpochDecision] = []

    @property
    def layout(self) -> Layout:
        """The layout live traffic currently runs under."""
        return self._current.layout

    @property
    def address_map(self) -> AddressMap:
        """The placement live traffic currently runs under."""
        return self._current.address_map

    @property
    def swaps(self) -> int:
        """Drift-triggered layout replacements so far."""
        return sum(1 for d in self.decisions if d.swapped)

    def end_epoch(self, epoch_profile: EpochProfile) -> EpochDecision:
        """Process one epoch's sampled profile; returns the decision.

        The returned decision's layout (if any) serves the *next*
        epoch — callers should measure the current epoch against
        :attr:`address_map` *before* calling this.
        """
        if not epoch_profile.reliable:
            decision = EpochDecision(
                epoch=epoch_profile.epoch,
                action="hold",
                report=None,
                relayout=None,
            )
            obs.counter("online.actions.hold").inc()
            self.decisions.append(decision)
            return decision

        live = epoch_profile.profile
        report = self.detector.observe(live)
        if report.drifted:
            action, training = "swap", live
        elif report.refresh:
            action, training = "refresh", self.detector.accumulated
        else:
            action = "consolidate"
            training = Profile(self.binary)
            training.merge(self.detector.reference)
            if self.detector.accumulated is not None:
                training.merge(self.detector.accumulated)

        obs.counter(f"online.actions.{action}").inc()
        obs.gauge("online.drift_score").set(report.score)
        obs.series("online.drift_scores").record(report.score)
        result = self.relayout.rebuild(
            training,
            previous=self._current.optimizer,
            reference=self.detector.reference,
            fallback=self._current,
        )
        self.detector.rebase(training)
        self._current = result
        decision = EpochDecision(
            epoch=epoch_profile.epoch,
            action=action,
            report=report,
            relayout=result,
        )
        self.decisions.append(decision)
        return decision
