"""Incremental re-layout: rebuild the code layout from a new profile,
reusing what did not drift.

Chaining dominates layout-construction cost (it walks every
procedure's flow graph), but a profile drift usually perturbs only a
handful of procedures.  :class:`AdaptiveRelayout` therefore asks
:func:`~repro.online.drift.drifted_procedures` which procedures carry
the weight shift, re-chains only those, and adopts the previous
optimizer's chains for the rest; splitting and ordering always re-run
globally (they are cheap and their decisions are global by nature).

Finished epoch layouts are cached in the
:class:`~repro.harness.store.ArtifactStore` keyed by the *profile
fingerprint*, so replaying a run (or a different experiment arriving
at the same sampled profile) hot-swaps the cached layout without
rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.harness.runlog import CACHE_HIT, CACHE_MISS, CACHE_OFF, RunLog
from repro.harness.store import ArtifactStore, load_layout, save_layout
from repro.ir import AddressMap, Binary, Layout, assign_addresses
from repro.layout import SpikeOptimizer
from repro.online.drift import drifted_procedures
from repro.profiles.profile import Profile


@dataclass
class RelayoutResult:
    """One rebuilt layout plus provenance for the epoch report."""

    layout: Layout
    address_map: AddressMap
    optimizer: SpikeOptimizer
    #: Procedures re-chained against the new profile ("*" = all).
    rebuilt_procs: Tuple[str, ...]
    #: Procedures whose chains were adopted from the previous layout.
    reused_chains: int
    #: CACHE_HIT / CACHE_MISS / CACHE_OFF for the layout artifact.
    cache: str


class AdaptiveRelayout:
    """Rebuilds layouts between epochs, incrementally when possible."""

    def __init__(
        self,
        binary: Binary,
        combo: str = "all",
        store: Optional[ArtifactStore] = None,
        runlog: Optional[RunLog] = None,
        coverage: float = 0.9,
    ) -> None:
        self.binary = binary
        self.combo = combo
        self.store = store
        self.runlog = runlog or RunLog()
        #: Fraction of the weight shift the rebuilt set must cover.
        self.coverage = coverage

    def rebuild(
        self,
        profile: Profile,
        previous: Optional[SpikeOptimizer] = None,
        reference: Optional[Profile] = None,
    ) -> RelayoutResult:
        """Build the ``combo`` layout for ``profile``.

        With ``previous`` (the optimizer behind the outgoing layout)
        and ``reference`` (the profile that layout was trained on),
        only the procedures responsible for the drift between
        ``reference`` and ``profile`` are re-chained; the rest reuse
        the previous chains.  Without them, everything is rebuilt.
        """
        fingerprint = profile.fingerprint()
        name = f"online-layout-{self.combo}.json"
        with self.runlog.stage("relayout", f"{self.combo}@{fingerprint[:8]}") as record:
            cached = self._load(fingerprint, name)
            if cached is not None:
                record.cache = CACHE_HIT
                # The optimizer is rebuilt lazily: a cached layout needs
                # no chaining until a later incremental rebuild asks.
                optimizer = SpikeOptimizer(self.binary, profile)
                return RelayoutResult(
                    layout=cached,
                    address_map=assign_addresses(self.binary, cached),
                    optimizer=optimizer,
                    rebuilt_procs=(),
                    reused_chains=0,
                    cache=CACHE_HIT,
                )
            optimizer = SpikeOptimizer(self.binary, profile)
            rebuilt: Tuple[str, ...] = ("*",)
            reused = 0
            if previous is not None and reference is not None:
                drifted = drifted_procedures(
                    reference, profile, coverage=self.coverage
                )
                reused = optimizer.reuse_chainings(previous, drifted)
                rebuilt = tuple(drifted)
            layout = optimizer.layout(self.combo)
            record.cache = CACHE_OFF if self.store is None else CACHE_MISS
            record.bytes = self._save(fingerprint, name, layout)
            obs.counter("online.rebuilds").inc()
            obs.counter("online.reused_chains").inc(reused)
            return RelayoutResult(
                layout=layout,
                address_map=assign_addresses(self.binary, layout),
                optimizer=optimizer,
                rebuilt_procs=rebuilt,
                reused_chains=reused,
                cache=record.cache,
            )

    def _load(self, fingerprint: str, name: str) -> Optional[Layout]:
        if self.store is None:
            return None
        path = self.store.path(fingerprint, name)
        if not path.is_file():
            return None
        try:
            return load_layout(path, self.binary)
        except Exception:  # corrupt cache entries degrade to a rebuild
            return None

    def _save(self, fingerprint: str, name: str, layout: Layout) -> int:
        if self.store is None:
            return 0
        try:
            path = self.store.prepare(fingerprint, name)
            save_layout(layout, path)
            return path.stat().st_size
        except OSError:  # read-only cache dir etc.
            return 0
