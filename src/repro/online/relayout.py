"""Incremental re-layout: rebuild the code layout from a new profile,
reusing what did not drift.

Chaining dominates layout-construction cost (it walks every
procedure's flow graph), but a profile drift usually perturbs only a
handful of procedures.  :class:`AdaptiveRelayout` therefore asks
:func:`~repro.online.drift.drifted_procedures` which procedures carry
the weight shift, re-chains only those, and adopts the previous
optimizer's chains for the rest; splitting and ordering always re-run
globally (they are cheap and their decisions are global by nature).

Finished epoch layouts are cached in the
:class:`~repro.harness.store.ArtifactStore` keyed by the *profile
fingerprint*, so replaying a run (or a different experiment arriving
at the same sampled profile) hot-swaps the cached layout without
rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.check import check_layout
from repro.errors import LayoutError, StageGateError
from repro.harness.runlog import CACHE_HIT, RunLog
from repro.harness.store import ArtifactStore, load_layout, save_layout
from repro.ir import AddressMap, Binary, Layout, assign_addresses
from repro.layout import SpikeOptimizer
from repro.online.drift import drifted_procedures
from repro.pipeline import ArtifactSpec, PipelineRunner, Stage, StageGraph
from repro.profiles.profile import Profile


@dataclass
class RelayoutResult:
    """One rebuilt layout plus provenance for the epoch report."""

    layout: Layout
    address_map: AddressMap
    optimizer: SpikeOptimizer
    #: Procedures re-chained against the new profile ("*" = all).
    rebuilt_procs: Tuple[str, ...]
    #: Procedures whose chains were adopted from the previous layout.
    reused_chains: int
    #: CACHE_HIT / CACHE_MISS / CACHE_OFF for the layout artifact.
    cache: str


class AdaptiveRelayout:
    """Rebuilds layouts between epochs, incrementally when possible."""

    def __init__(
        self,
        binary: Binary,
        combo: str = "all",
        store: Optional[ArtifactStore] = None,
        runlog: Optional[RunLog] = None,
        coverage: float = 0.9,
        verify: bool = True,
    ) -> None:
        self.binary = binary
        self.combo = combo
        self.store = store
        self.runlog = runlog or RunLog()
        #: Fraction of the weight shift the rebuilt set must cover.
        self.coverage = coverage
        #: Gate every layout through ``repro.check`` before it can be
        #: swapped in.  On by default: the online loop runs unattended,
        #: so a corrupt layout must be refused, not simulated.
        self.verify = verify

    def rebuild(
        self,
        profile: Profile,
        previous: Optional[SpikeOptimizer] = None,
        reference: Optional[Profile] = None,
        fallback: Optional[RelayoutResult] = None,
    ) -> RelayoutResult:
        """Build the ``combo`` layout for ``profile``.

        With ``previous`` (the optimizer behind the outgoing layout)
        and ``reference`` (the profile that layout was trained on),
        only the procedures responsible for the drift between
        ``reference`` and ``profile`` are re-chained; the rest reuse
        the previous chains.  Without them, everything is rebuilt.

        When :attr:`verify` is on, the finished layout must pass the
        ``repro.check`` integrity gate before it is returned.  A cached
        layout that fails degrades to a rebuild; a freshly built one
        that fails bumps the ``online.relayout.rejected`` counter and
        returns ``fallback`` (the result backing the currently running
        layout) -- or raises :class:`~repro.errors.LayoutError` when no
        fallback exists.
        """
        fingerprint = profile.fingerprint()
        name = f"online-layout-{self.combo}.json"
        # One single-stage graph per epoch: the layout artifact is keyed
        # by the *profile* fingerprint, so each sampled profile gets its
        # own runner namespace over the shared store and run log.
        state: dict = {}

        def build(_) -> Layout:
            optimizer = SpikeOptimizer(self.binary, profile)
            rebuilt: Tuple[str, ...] = ("*",)
            reused = 0
            if previous is not None and reference is not None:
                drifted = drifted_procedures(
                    reference, profile, coverage=self.coverage
                )
                reused = optimizer.reuse_chainings(previous, drifted)
                rebuilt = tuple(drifted)
            state.update(optimizer=optimizer, rebuilt=rebuilt, reused=reused)
            return optimizer.layout(self.combo)

        def gate(layout: Layout) -> bool:
            if not self.verify:
                return True
            state["report"] = self._gate_report(layout)
            return state["report"].ok

        runner = PipelineRunner(
            StageGraph([Stage(
                name="relayout", detail=f"{self.combo}@{fingerprint[:8]}",
                outputs=(ArtifactSpec(name, load_layout, save_layout),),
                build=build, gate=gate,
            )]),
            store=self.store,
            fingerprint=fingerprint,
            runlog=self.runlog,
            # A corrupt cache entry degrades to a rebuild from scratch.
            on_cache_reject=lambda _stage, _value: obs.counter(
                "online.relayout.rejected_cache"
            ).inc(),
        )
        try:
            artifact = runner.artifact(f"relayout:{self.combo}@{fingerprint[:8]}")
        except StageGateError:
            obs.counter("online.relayout.rejected").inc()
            if fallback is not None:
                return fallback
            report = state["report"]
            shown = "\n".join(d.render() for d in report.errors[:5])
            raise LayoutError(
                f"online relayout {self.combo!r} failed integrity "
                f"checks ({len(report.errors)} error(s)):\n{shown}"
            ) from None
        layout = artifact.value
        if artifact.hit:
            # The optimizer is rebuilt lazily: a cached layout needs
            # no chaining until a later incremental rebuild asks.
            return RelayoutResult(
                layout=layout,
                address_map=assign_addresses(self.binary, layout),
                optimizer=SpikeOptimizer(self.binary, profile),
                rebuilt_procs=(),
                reused_chains=0,
                cache=CACHE_HIT,
            )
        obs.counter("online.rebuilds").inc()
        obs.counter("online.reused_chains").inc(state["reused"])
        return RelayoutResult(
            layout=layout,
            address_map=assign_addresses(self.binary, layout),
            optimizer=state["optimizer"],
            rebuilt_procs=state["rebuilt"],
            reused_chains=state["reused"],
            cache=artifact.cache,
        )

    def _gate_report(self, layout: Layout):
        """Run the integrity gate.  Structure checks come first on
        their own: ``assign_addresses`` refuses structurally broken
        layouts outright, and the gate must *report* corruption, not
        crash on it."""
        target = f"online/{self.combo}"
        with obs.span("online.relayout.verify", combo=self.combo):
            report = check_layout(self.binary, layout, target=target)
            if report.ok:
                report = check_layout(
                    self.binary, layout,
                    assign_addresses(self.binary, layout), target=target,
                )
        return report

