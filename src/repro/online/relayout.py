"""Incremental re-layout: rebuild the code layout from a new profile,
reusing what did not drift.

Chaining dominates layout-construction cost (it walks every
procedure's flow graph), but a profile drift usually perturbs only a
handful of procedures.  :class:`AdaptiveRelayout` therefore asks
:func:`~repro.online.drift.drifted_procedures` which procedures carry
the weight shift, re-chains only those, and adopts the previous
optimizer's chains for the rest; splitting and ordering always re-run
globally (they are cheap and their decisions are global by nature).

Finished epoch layouts are cached in the
:class:`~repro.harness.store.ArtifactStore` keyed by the *profile
fingerprint*, so replaying a run (or a different experiment arriving
at the same sampled profile) hot-swaps the cached layout without
rebuilding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import obs
from repro.check import check_layout
from repro.errors import LayoutError
from repro.harness.runlog import CACHE_HIT, CACHE_MISS, CACHE_OFF, RunLog
from repro.harness.store import ArtifactStore, load_layout, save_layout
from repro.ir import AddressMap, Binary, Layout, assign_addresses
from repro.layout import SpikeOptimizer
from repro.online.drift import drifted_procedures
from repro.profiles.profile import Profile


@dataclass
class RelayoutResult:
    """One rebuilt layout plus provenance for the epoch report."""

    layout: Layout
    address_map: AddressMap
    optimizer: SpikeOptimizer
    #: Procedures re-chained against the new profile ("*" = all).
    rebuilt_procs: Tuple[str, ...]
    #: Procedures whose chains were adopted from the previous layout.
    reused_chains: int
    #: CACHE_HIT / CACHE_MISS / CACHE_OFF for the layout artifact.
    cache: str


class AdaptiveRelayout:
    """Rebuilds layouts between epochs, incrementally when possible."""

    def __init__(
        self,
        binary: Binary,
        combo: str = "all",
        store: Optional[ArtifactStore] = None,
        runlog: Optional[RunLog] = None,
        coverage: float = 0.9,
        verify: bool = True,
    ) -> None:
        self.binary = binary
        self.combo = combo
        self.store = store
        self.runlog = runlog or RunLog()
        #: Fraction of the weight shift the rebuilt set must cover.
        self.coverage = coverage
        #: Gate every layout through ``repro.check`` before it can be
        #: swapped in.  On by default: the online loop runs unattended,
        #: so a corrupt layout must be refused, not simulated.
        self.verify = verify

    def rebuild(
        self,
        profile: Profile,
        previous: Optional[SpikeOptimizer] = None,
        reference: Optional[Profile] = None,
        fallback: Optional[RelayoutResult] = None,
    ) -> RelayoutResult:
        """Build the ``combo`` layout for ``profile``.

        With ``previous`` (the optimizer behind the outgoing layout)
        and ``reference`` (the profile that layout was trained on),
        only the procedures responsible for the drift between
        ``reference`` and ``profile`` are re-chained; the rest reuse
        the previous chains.  Without them, everything is rebuilt.

        When :attr:`verify` is on, the finished layout must pass the
        ``repro.check`` integrity gate before it is returned.  A cached
        layout that fails degrades to a rebuild; a freshly built one
        that fails bumps the ``online.relayout.rejected`` counter and
        returns ``fallback`` (the result backing the currently running
        layout) -- or raises :class:`~repro.errors.LayoutError` when no
        fallback exists.
        """
        fingerprint = profile.fingerprint()
        name = f"online-layout-{self.combo}.json"
        with self.runlog.stage("relayout", f"{self.combo}@{fingerprint[:8]}") as record:
            cached = self._load(fingerprint, name)
            if cached is not None and not self._gate_ok(cached):
                obs.counter("online.relayout.rejected_cache").inc()
                cached = None  # corrupt cache entry: rebuild from scratch
            if cached is not None:
                record.cache = CACHE_HIT
                # The optimizer is rebuilt lazily: a cached layout needs
                # no chaining until a later incremental rebuild asks.
                optimizer = SpikeOptimizer(self.binary, profile)
                return RelayoutResult(
                    layout=cached,
                    address_map=assign_addresses(self.binary, cached),
                    optimizer=optimizer,
                    rebuilt_procs=(),
                    reused_chains=0,
                    cache=CACHE_HIT,
                )
            optimizer = SpikeOptimizer(self.binary, profile)
            rebuilt: Tuple[str, ...] = ("*",)
            reused = 0
            if previous is not None and reference is not None:
                drifted = drifted_procedures(
                    reference, profile, coverage=self.coverage
                )
                reused = optimizer.reuse_chainings(previous, drifted)
                rebuilt = tuple(drifted)
            layout = optimizer.layout(self.combo)
            gate = self._gate_report(layout) if self.verify else None
            if gate is not None and not gate.ok:
                obs.counter("online.relayout.rejected").inc()
                if fallback is not None:
                    record.cache = CACHE_OFF
                    return fallback
                shown = "\n".join(d.render() for d in gate.errors[:5])
                raise LayoutError(
                    f"online relayout {self.combo!r} failed integrity "
                    f"checks ({len(gate.errors)} error(s)):\n{shown}"
                )
            record.cache = CACHE_OFF if self.store is None else CACHE_MISS
            record.bytes = self._save(fingerprint, name, layout)
            obs.counter("online.rebuilds").inc()
            obs.counter("online.reused_chains").inc(reused)
            return RelayoutResult(
                layout=layout,
                address_map=assign_addresses(self.binary, layout),
                optimizer=optimizer,
                rebuilt_procs=rebuilt,
                reused_chains=reused,
                cache=record.cache,
            )

    def _gate_ok(self, layout: Layout) -> bool:
        """True when the layout passes the integrity gate (or the
        gate is off)."""
        if not self.verify:
            return True
        return self._gate_report(layout).ok

    def _gate_report(self, layout: Layout):
        """Run the integrity gate.  Structure checks come first on
        their own: ``assign_addresses`` refuses structurally broken
        layouts outright, and the gate must *report* corruption, not
        crash on it."""
        target = f"online/{self.combo}"
        with obs.span("online.relayout.verify", combo=self.combo):
            report = check_layout(self.binary, layout, target=target)
            if report.ok:
                report = check_layout(
                    self.binary, layout,
                    assign_addresses(self.binary, layout), target=target,
                )
        return report

    def _load(self, fingerprint: str, name: str) -> Optional[Layout]:
        if self.store is None:
            return None
        path = self.store.path(fingerprint, name)
        if not path.is_file():
            return None
        try:
            # No eager validation: a corrupt entry must reach the gate
            # (which counts the rejection), not vanish as a load error.
            return load_layout(path)
        except Exception:  # unreadable cache entries degrade to a rebuild
            return None

    def _save(self, fingerprint: str, name: str, layout: Layout) -> int:
        if self.store is None:
            return 0
        # store.save is atomic (temp + os.replace) and absorbs OSError
        # (read-only cache dir etc.) by returning 0.
        return self.store.save(fingerprint, name, layout, save_layout)
