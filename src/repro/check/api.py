"""High-level entry points composing the analysis passes.

:func:`check_layout` / :func:`check_profile` / :func:`check_quality`
bundle the individual passes into the three analysis families and
return a :class:`~repro.check.diagnostics.CheckReport`;
:func:`verify_layout` is the enforcement wrapper that raises
:class:`~repro.errors.LayoutError` when a layout fails integrity
checks (used by ``SpikeOptimizer(verify=True)`` and the
``AdaptiveRelayout`` swap gate).
"""

from __future__ import annotations

from repro.check.diagnostics import CheckContext, CheckReport, CheckRunner
from repro.check.layout_checks import (
    check_addresses,
    check_branch_targets,
    check_fixups,
    check_segments,
    check_structure,
)
from repro.check.profile_checks import (
    check_call_graph,
    check_flow_conservation,
    check_reachability,
    check_transitions,
)
from repro.check.quality_checks import (
    check_cold_in_hot,
    check_conflict_smells,
    check_hot_fallthroughs,
    check_page_crossing_loops,
)
from repro.check.static_checks import (
    check_branch_directions,
    check_hot_set_divergence,
    check_loop_rank_inversions,
    check_static_cold_hot,
    check_unreached_sampled,
)
from repro.errors import LayoutError

#: Structure-only layout passes (no address map required).
_STRUCTURE_RUNNER = CheckRunner([
    ("layout.structure", check_structure),
    ("layout.branch_targets", check_branch_targets),
    ("layout.segments", check_segments),
])

#: Address-dependent layout passes.
_ADDRESS_RUNNER = CheckRunner([
    ("layout.addresses", check_addresses),
    ("layout.fixups", check_fixups),
])

_PROFILE_RUNNER = CheckRunner([
    ("profile.transitions", check_transitions),
    ("profile.flow_conservation", check_flow_conservation),
    ("profile.call_graph", check_call_graph),
    ("profile.reachability", check_reachability),
])

_QUALITY_RUNNER = CheckRunner([
    ("quality.hot_fallthroughs", check_hot_fallthroughs),
    ("quality.cold_in_hot", check_cold_in_hot),
    ("quality.page_crossing_loops", check_page_crossing_loops),
    ("quality.conflict_smells", check_conflict_smells),
])

#: Static-vs-measured differential passes (``STA*``).
_STATIC_RUNNER = CheckRunner([
    ("static.hot_set", check_hot_set_divergence),
    ("static.branch_directions", check_branch_directions),
    ("static.loop_ranks", check_loop_rank_inversions),
    ("static.cold_hot", check_static_cold_hot),
    ("static.unreached", check_unreached_sampled),
])


def check_layout(
    binary, layout, address_map=None, target: str = ""
) -> CheckReport:
    """Run the layout-integrity family (``LAY*``).

    Structure passes always run.  Address passes need an
    ``address_map`` and only run when the structure came back clean --
    address arithmetic over a layout that places blocks twice (or not
    at all) would just produce noise after the real finding.
    """
    target = target or getattr(layout, "name", "")
    ctx = CheckContext(binary=binary, layout=layout, target=target)
    report = _STRUCTURE_RUNNER.run(ctx)
    if address_map is not None and report.ok:
        ctx.address_map = address_map
        report.extend(_ADDRESS_RUNNER.run(ctx))
    return report


def check_profile(binary, profile, target: str = "") -> CheckReport:
    """Run the profile/CFG-consistency family (``PRF*``)."""
    ctx = CheckContext(binary=binary, profile=profile, target=target)
    return _PROFILE_RUNNER.run(ctx)


def check_quality(
    binary, profile, layout, address_map, target: str = ""
) -> CheckReport:
    """Run the layout-quality lints (``QLT*``, info-only)."""
    target = target or getattr(layout, "name", "")
    ctx = CheckContext(
        binary=binary, profile=profile, layout=layout,
        address_map=address_map, target=target,
    )
    return _QUALITY_RUNNER.run(ctx)


def check_static_diff(binary, measured, static, target: str = "") -> CheckReport:
    """Run the static-vs-measured differential family (``STA*``).

    ``measured`` is the ground truth, ``static`` the
    :func:`repro.staticpred.synthesize_profile` prediction for the same
    binary.  All findings are advisories (warn/info) quantifying where
    the prediction diverges; a self-diff (``measured`` on both sides)
    reports nothing.
    """
    ctx = CheckContext(
        binary=binary, profile=measured, target=target or "static-diff"
    )
    ctx.cache["static_profile"] = static
    return _STATIC_RUNNER.run(ctx)


def verify_layout(
    binary, layout, address_map=None, target: str = ""
) -> CheckReport:
    """Enforcing form of :func:`check_layout`.

    Raises:
        LayoutError: When any error-severity finding is reported; the
            message carries the first few findings.
    """
    report = check_layout(binary, layout, address_map=address_map, target=target)
    if not report.ok:
        shown = "\n".join(d.render() for d in report.errors[:5])
        raise LayoutError(
            f"layout {target or getattr(layout, 'name', '?')!r} failed "
            f"integrity checks ({len(report.errors)} error(s)):\n{shown}"
        )
    return report


def check_all(
    binary,
    profile=None,
    layout=None,
    address_map=None,
    target: str = "",
) -> CheckReport:
    """Run every applicable family over the supplied artifacts."""
    report = CheckReport()
    if layout is not None:
        report.extend(check_layout(binary, layout, address_map, target=target))
    if profile is not None:
        report.extend(check_profile(binary, profile, target=target))
    if (
        profile is not None and layout is not None
        and address_map is not None and report.ok
    ):
        report.extend(check_quality(binary, profile, layout, address_map, target=target))
    return report
