"""Layout-quality lints (the ``QLT*`` family) -- advisory only.

These are the paper's §3 placement heuristics turned into "smell"
detectors: none of them makes a layout *incorrect*, but each one marks
a spot where the layout is leaving fetch locality on the table (a hot
edge that now needs a taken branch, cold bytes polluting a hot cache
line stream, a hot loop straddling a page, hot lines fighting over a
direct-mapped cache set).  All findings are INFO severity and capped so
a deliberately unoptimized baseline layout stays readable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Set, Tuple

from repro.check.diagnostics import CheckContext, Diagnostic, Severity
from repro.ir.instruction import Terminator

#: Page size used for the iTLB-hazard lint (the paper's 8 KB pages).
PAGE_BYTES = 8 * 1024
#: Direct-mapped I-cache geometry for the conflict lint (paper §4:
#: 8 KB direct-mapped, 32-byte lines -- the 21064/21164 L1).
CACHE_BYTES = 8 * 1024
LINE_BYTES = 32
#: A block/edge is "hot" when it carries at least this fraction of the
#: profile's hottest block count.
HOT_FRACTION = 0.10
#: ...and "cold" below this fraction.
COLD_FRACTION = 0.001
#: Findings reported per lint before the remainder is summarized.
REPORT_CAP = 12


def _thresholds(profile) -> Tuple[float, float]:
    peak = float(profile.block_counts.max()) if len(profile.block_counts) else 0.0
    return max(1.0, HOT_FRACTION * peak), COLD_FRACTION * peak


def _capped(findings: List[Diagnostic], code: str, target: str) -> Iterator[Diagnostic]:
    yield from findings[:REPORT_CAP]
    if len(findings) > REPORT_CAP:
        yield Diagnostic(
            code, Severity.INFO,
            f"...and {len(findings) - REPORT_CAP} further occurrences",
            target=target,
        )


def check_hot_fallthroughs(ctx: CheckContext) -> Iterator[Diagnostic]:
    """QLT001: a hot measured transition that the layout turned into a
    taken branch.  Chaining exists precisely to make the hot arm of
    every branch sequential (paper §3.1); a hot non-fall-through is a
    missed straightening."""
    binary, profile, amap = ctx.binary, ctx.profile, ctx.address_map
    if binary is None or profile is None or amap is None:
        return
    hot, _ = _thresholds(profile)
    findings: List[Diagnostic] = []
    for (src, dst), count in sorted(profile.edge_counts.items()):
        if count < hot:
            continue
        block = binary.block(src)
        if dst not in block.succs:
            continue  # call/return transfer: adjacency is not the goal
        if block.terminator not in (Terminator.FALLTHROUGH, Terminator.COND_BRANCH):
            continue
        if not amap.is_sequential(src, dst):
            findings.append(Diagnostic(
                "QLT001", Severity.INFO,
                f"hot edge {block.proc_name}.{block.label} -> block {dst} "
                f"({count}x) is a taken branch in this layout",
                target=ctx.target, location=f"edge {src}->{dst}",
                hint="chain these blocks so the hot path falls through",
            ))
    yield from _capped(findings, "QLT001", ctx.target)


def check_cold_in_hot(ctx: CheckContext) -> Iterator[Diagnostic]:
    """QLT002: a cold block sitting between two hot blocks of the same
    unit -- its bytes ride along in every fetch of the surrounding hot
    stream (the dilution fine-grain splitting removes, paper §3.2)."""
    binary, profile, layout = ctx.binary, ctx.profile, ctx.layout
    if binary is None or profile is None or layout is None:
        return
    hot, cold = _thresholds(profile)
    findings: List[Diagnostic] = []
    for unit in layout.units:
        counts = [profile.count(bid) for bid in unit.block_ids]
        for pos in range(1, len(counts) - 1):
            if (counts[pos] <= cold
                    and counts[pos - 1] >= hot and counts[pos + 1] >= hot):
                block = binary.block(unit.block_ids[pos])
                findings.append(Diagnostic(
                    "QLT002", Severity.INFO,
                    f"cold block {block.proc_name}.{block.label} "
                    f"({counts[pos]}x) interleaved between hot neighbours "
                    f"({counts[pos - 1]}x / {counts[pos + 1]}x)",
                    target=ctx.target, location=f"unit {unit.name}",
                    hint="split the cold block into a cold segment",
                ))
    yield from _capped(findings, "QLT002", ctx.target)


def check_page_crossing_loops(ctx: CheckContext) -> Iterator[Diagnostic]:
    """QLT003: a hot loop whose body straddles a page boundary costs an
    extra iTLB entry on every iteration."""
    binary, profile, amap = ctx.binary, ctx.profile, ctx.address_map
    if binary is None or profile is None or amap is None:
        return
    hot, _ = _thresholds(profile)
    findings: List[Diagnostic] = []
    for (src, dst), count in sorted(profile.edge_counts.items()):
        if count < hot:
            continue
        block = binary.block(src)
        if dst not in block.succs:
            continue
        head, tail = int(amap.addr[dst]), amap.end_addr(src)
        if head < tail and (head // PAGE_BYTES) != ((tail - 1) // PAGE_BYTES):
            findings.append(Diagnostic(
                "QLT003", Severity.INFO,
                f"hot loop {block.proc_name}: blocks {dst}..{src} ({count}x) "
                f"span {head:#x}..{tail:#x}, crossing a {PAGE_BYTES // 1024} KB "
                f"page boundary",
                target=ctx.target, location=f"edge {src}->{dst}",
                hint="placing the loop within one page avoids the extra iTLB entry",
            ))
    yield from _capped(findings, "QLT003", ctx.target)


def check_conflict_smells(ctx: CheckContext) -> Iterator[Diagnostic]:
    """QLT004: several distinct hot regions mapping onto the same
    direct-mapped cache set -- the conflict misses the paper's ordering
    pass (§3.3) exists to avoid."""
    binary, profile, layout, amap = ctx.binary, ctx.profile, ctx.layout, ctx.address_map
    if binary is None or profile is None or layout is None or amap is None:
        return
    hot, _ = _thresholds(profile)
    n_sets = CACHE_BYTES // LINE_BYTES
    # Which hot units touch each cache set?
    by_set: Dict[int, Set[str]] = defaultdict(set)
    unit_of: Dict[str, str] = {}
    for unit in layout.units:
        if not any(profile.count(bid) >= hot for bid in unit.block_ids):
            continue
        start = amap.unit_starts.get(unit.name)
        if start is None:
            continue
        end = start
        for bid in unit.block_ids:
            end = max(end, amap.end_addr(bid))
        for line in range(start // LINE_BYTES, max(start, end - 1) // LINE_BYTES + 1):
            by_set[line % n_sets].add(unit.name)
            unit_of[unit.name] = unit.proc_name
    findings: List[Diagnostic] = []
    for cache_set in sorted(by_set):
        units = sorted(by_set[cache_set])
        if len(units) >= 3:
            findings.append(Diagnostic(
                "QLT004", Severity.INFO,
                f"{len(units)} hot units collide in cache set {cache_set}: "
                f"{', '.join(units[:4])}{', ...' if len(units) > 4 else ''}",
                target=ctx.target, location=f"set {cache_set}",
                hint="order the colliding units closer together to spread their sets",
            ))
    yield from _capped(findings, "QLT004", ctx.target)
