"""Profile / CFG consistency analyses (the ``PRF*`` family).

A measured :class:`~repro.profiles.Profile` must obey Kirchhoff-style
flow conservation against the binary's control-flow structure: control
enters a block exactly as often as it executes, and leaves it exactly
as often as it executes, up to the well-understood boundary cases
(stream heads enter procedure entries unannounced; RETURN blocks leave
through the return machinery, not a measured edge).  These passes were
calibrated against exact Pixie profiles of both the app and kernel
program images -- a clean profile produces zero findings.

Slack: estimated profiles (DCPI sampling, LBR bursts) are allowed a
small absolute + relative imbalance before a finding fires.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Iterator, List, Set

from repro.check.diagnostics import CheckContext, Diagnostic, Severity
from repro.ir.instruction import Terminator

#: Absolute / relative imbalance tolerated before PRF001 fires.
FLOW_SLACK_ABS = 8
FLOW_SLACK_REL = 0.01


def _slack(count: float) -> float:
    return max(FLOW_SLACK_ABS, FLOW_SLACK_REL * count)


def _legal_return_targets(binary) -> Set[int]:
    """Where a RETURN may measurably transfer to: any call-site
    continuation, or any procedure entry (top-level dispatch returns
    into the next operation's handler)."""
    targets: Set[int] = {
        binary.entry_bid(name) for name in binary.proc_order()
    }
    for block in binary.blocks():
        if block.terminator is Terminator.CALL:
            targets.add(block.succs[0])
    return targets


def _is_legal_transition(binary, block, dst: int, return_targets: Set[int]) -> bool:
    term = block.terminator
    if term is Terminator.RETURN:
        return dst in return_targets
    if term is Terminator.CALL:
        return dst == binary.entry_bid(block.call_target) or dst == block.succs[0]
    return dst in block.succs


def check_transitions(ctx: CheckContext) -> Iterator[Diagnostic]:
    """PRF002/PRF003: every measured transition is legal for its source
    block's terminator and never outnumbers the block's executions."""
    binary, profile = ctx.binary, ctx.profile
    if binary is None or profile is None:
        return
    return_targets = _legal_return_targets(binary)
    outgoing: Dict[int, int] = defaultdict(int)
    incoming: Dict[int, int] = defaultdict(int)
    illegal = 0
    for (src, dst), count in sorted(profile.edge_counts.items()):
        if count <= 0:
            continue
        outgoing[src] += count
        incoming[dst] += count
        block = binary.block(src)
        if not _is_legal_transition(binary, block, dst, return_targets):
            illegal += 1
            if illegal > 16:
                continue
            yield Diagnostic(
                "PRF003", Severity.ERROR,
                f"{count}x transition {block.proc_name}.{block.label} "
                f"(id {src}, {block.terminator.value}) -> block {dst} is not "
                f"an edge of the control-flow graph",
                target=ctx.target, location=f"edge {src}->{dst}",
                hint="the profile was measured on a different binary, or is corrupt",
            )
    if illegal > 16:
        yield Diagnostic(
            "PRF003", Severity.ERROR,
            f"...and {illegal - 16} further illegal transitions",
            target=ctx.target,
        )

    for bid, total in sorted(outgoing.items()):
        count = profile.count(bid)
        if total > count + _slack(count):
            block = binary.block(bid)
            yield Diagnostic(
                "PRF002", Severity.ERROR,
                f"block {block.proc_name}.{block.label} (id {bid}) executed "
                f"{count} times but {total} outgoing transitions were measured",
                target=ctx.target, location=f"block {bid}",
                hint="control cannot leave a block more often than it runs",
            )
    for bid, total in sorted(incoming.items()):
        count = profile.count(bid)
        if total > count + _slack(count):
            block = binary.block(bid)
            yield Diagnostic(
                "PRF002", Severity.ERROR,
                f"block {block.proc_name}.{block.label} (id {bid}) executed "
                f"{count} times but {total} incoming transitions were measured",
                target=ctx.target, location=f"block {bid}",
            )


def check_flow_conservation(ctx: CheckContext) -> Iterator[Diagnostic]:
    """PRF001: inflow and outflow balance each block's execution count.

    Deficits are legal only at the measurement boundary: outflow may
    fall short at RETURN blocks (control leaves through the return,
    which the stream attributes to the *next* operation) and inflow may
    fall short at procedure entries (stream heads and call transfers).
    Everywhere else, ``inflow == count == outflow`` within slack.
    """
    binary, profile = ctx.binary, ctx.profile
    if binary is None or profile is None:
        return
    if not profile.edge_counts:
        return  # block-count-only profile: nothing to conserve against
    outgoing: Dict[int, int] = defaultdict(int)
    incoming: Dict[int, int] = defaultdict(int)
    for (src, dst), count in profile.edge_counts.items():
        if count > 0:
            outgoing[src] += count
            incoming[dst] += count
    entries = {binary.entry_bid(name) for name in binary.proc_order()}

    emitted = 0
    for block in binary.blocks():
        bid = block.bid
        count = profile.count(bid)
        if count <= 0:
            continue
        slack = _slack(count)
        deficits = []
        if (count - outgoing[bid] > slack
                and block.terminator is not Terminator.RETURN):
            deficits.append(f"outflow {outgoing[bid]}")
        if count - incoming[bid] > slack and bid not in entries:
            deficits.append(f"inflow {incoming[bid]}")
        for deficit in deficits:
            emitted += 1
            if emitted > 16:
                yield Diagnostic(
                    "PRF001", Severity.ERROR,
                    "...further flow-conservation violations suppressed",
                    target=ctx.target,
                )
                return
            yield Diagnostic(
                "PRF001", Severity.ERROR,
                f"block {block.proc_name}.{block.label} (id {bid}) executed "
                f"{count} times but measured {deficit}",
                target=ctx.target, location=f"block {bid}",
                hint="transitions are missing from the profile (truncated or corrupt)",
            )


def check_call_graph(ctx: CheckContext) -> Iterator[Diagnostic]:
    """PRF004: call sites of a procedure do not outnumber its
    invocations (warn -- entries may also run via top-level dispatch,
    so an *excess* of entry executions is fine)."""
    binary, profile = ctx.binary, ctx.profile
    if binary is None or profile is None:
        return
    call_totals: Dict[str, int] = defaultdict(int)
    for block in binary.blocks():
        if block.terminator is Terminator.CALL:
            call_totals[block.call_target] += profile.count(block.bid)
    for callee, calls in sorted(call_totals.items()):
        invocations = profile.count(binary.entry_bid(callee))
        if calls > invocations + _slack(invocations):
            yield Diagnostic(
                "PRF004", Severity.WARN,
                f"procedure {callee!r} entered {invocations} times but its "
                f"call sites executed {calls} times",
                target=ctx.target, location=f"procedure {callee}",
                hint="call-site counts and callee invocations disagree",
            )


def _reachable_from_entry(binary, proc) -> Set[int]:
    entry = proc.blocks[0].bid
    seen = {entry}
    work = deque([entry])
    owned = {b.bid for b in proc.blocks}
    while work:
        bid = work.popleft()
        for dst in binary.block(bid).succs:
            if dst in owned and dst not in seen:
                seen.add(dst)
                work.append(dst)
    return seen


def check_reachability(ctx: CheckContext) -> Iterator[Diagnostic]:
    """PRF005/PRF006: blocks unreachable from their procedure's entry.

    An *executed* unreachable block (PRF005, warn) means the CFG is
    missing edges the program actually took; a never-executed one
    (PRF006, info) is structurally dead code inflating the image.
    """
    binary = ctx.binary
    if binary is None:
        return
    profile = ctx.profile
    dead = 0
    for name in binary.proc_order():
        proc = binary.proc(name)
        reachable = _reachable_from_entry(binary, proc)
        for block in proc.blocks:
            if block.bid in reachable:
                continue
            count = profile.count(block.bid) if profile is not None else 0
            if count > 0:
                yield Diagnostic(
                    "PRF005", Severity.WARN,
                    f"block {name}.{block.label} (id {block.bid}) executed "
                    f"{count} times but is unreachable from the entry of {name!r}",
                    target=ctx.target, location=f"block {block.bid}",
                    hint="the CFG is missing an edge the program took",
                )
            else:
                dead += 1
                if dead <= 8:
                    yield Diagnostic(
                        "PRF006", Severity.INFO,
                        f"block {name}.{block.label} (id {block.bid}) is "
                        f"unreachable and never executed (dead code)",
                        target=ctx.target, location=f"block {block.bid}",
                    )
    if dead > 8:
        yield Diagnostic(
            "PRF006", Severity.INFO,
            f"...and {dead - 8} further dead blocks",
            target=ctx.target,
        )


def check_flow_graph(graph, block_counts, target: str = "") -> List[Diagnostic]:
    """Conservation check for an estimated :class:`~repro.ir.FlowGraph`.

    An estimator must never put more outflow on a block's edges than
    the block itself executed (the latent defect in the pre-fix
    ``flow_graph_from_block_counts``: per-edge ``min(src, dst)`` weights
    summed over multiple successors could exceed the source count).
    """
    outgoing: Dict[int, float] = defaultdict(float)
    for edge in graph.edges():
        outgoing[edge.src] += edge.weight
    diagnostics: List[Diagnostic] = []
    for block in graph.proc.blocks:
        count = float(block_counts[block.bid])
        total = outgoing[block.bid]
        if total > count + _slack(count):
            diagnostics.append(Diagnostic(
                "PRF002", Severity.ERROR,
                f"estimated flow graph of {graph.proc.name!r}: block "
                f"{block.label} (id {block.bid}) executed {count:.0f} times "
                f"but carries {total:.0f} units of outgoing edge weight",
                target=target, location=f"block {block.bid}",
                hint="rescale estimated edge weights to the source block count",
            ))
    return diagnostics
