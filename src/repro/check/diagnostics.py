"""The diagnostics engine: stable codes, severities, and the runner.

Every analysis in :mod:`repro.check` reports findings as
:class:`Diagnostic` values carrying a *stable code* (``LAY001``,
``PRF002``, ...), a severity, a human-readable message, and an optional
fix hint.  Codes are registered once in :data:`CODES` -- a diagnostic
with an unregistered code is a programming error and is rejected at
construction time, which keeps the catalogue in ``docs/CHECKS.md``
honest.

:class:`CheckRunner` composes analysis passes over a
:class:`CheckContext` and folds their findings into a
:class:`CheckReport` that renders as text (one line per finding) or
JSON (for tooling).  Every run increments the ``check.diagnostics.*``
observability counters so emitted diagnostics show up in
``BENCH_*.json`` metric snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs


class Severity(str, enum.Enum):
    """How bad a finding is.

    * ``ERROR`` -- an integrity violation: the artifact is corrupt and
      must not be used (``--strict`` exits non-zero on these).
    * ``WARN`` -- suspicious but possibly legitimate (e.g. sampling
      noise in an estimated profile).
    * ``INFO`` -- a quality lint or advisory (layout smells,
      deprecated-API call sites).
    """

    ERROR = "error"
    WARN = "warn"
    INFO = "info"

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.value


#: The stable diagnostic catalogue: code -> one-line description.
#: ``docs/CHECKS.md`` documents each entry in depth; a test asserts the
#: two stay in sync.
CODES: Dict[str, str] = {
    # -- layout integrity (LAY*) --------------------------------------
    "LAY001": "basic block of the binary is not placed by the layout",
    "LAY002": "basic block is placed more than once",
    "LAY003": "layout references a block the binary does not own here",
    "LAY004": "procedure entry-unit invariant broken",
    "LAY005": "placed blocks overlap in the address space",
    "LAY006": "unit start violates the layout's alignment or ordering",
    "LAY007": "branch target is not resolvable (successor unplaced)",
    "LAY008": "fall-through continuation is not adjacent and no fixup branch exists",
    "LAY009": "split segment continues past an unconditional control transfer",
    # -- profile / CFG consistency (PRF*) -----------------------------
    "PRF001": "flow conservation violated (block inflow/outflow vs execution count)",
    "PRF002": "measured transitions exceed the block's execution count",
    "PRF003": "measured transition is illegal for the source block's terminator",
    "PRF004": "call-site counts exceed the callee's invocation count",
    "PRF005": "block executed but unreachable from its procedure entry",
    "PRF006": "structurally dead block (unreachable, never executed)",
    # -- layout quality lints (QLT*) ----------------------------------
    "QLT001": "hot control-flow edge was made a non-fall-through",
    "QLT002": "cold block interleaved into a hot chain",
    "QLT003": "hot loop body crosses a page boundary (iTLB hazard)",
    "QLT004": "hot code lines collide in a direct-mapped cache set (conflict smell)",
    # -- static-vs-measured differential (STA*) -----------------------
    "STA001": "static and measured hot sets diverge (low Jaccard overlap)",
    "STA002": "static branch prediction contradicts the measured direction on a hot branch",
    "STA003": "loop-frequency ranking inverted between static and measured profiles",
    "STA004": "statically-cold block is hot under measurement",
    "STA005": "measured block carries zero static flow (statically unreached)",
    # -- deprecations (DEP*) ------------------------------------------
    "DEP000": "source file could not be parsed by the deprecation scanner",
    "DEP002": "call site uses a deprecated simulator entry point",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        code: Stable catalogue code (must exist in :data:`CODES`).
        severity: :class:`Severity` of the finding.
        message: Human-readable description of this occurrence.
        target: What was analyzed ("app/all", "kernel/base",
            "profile:app", a file path...).
        location: Where inside the target ("unit f.seg3", "block 42",
            "line 17").
        hint: How to fix or interpret the finding (optional).
    """

    code: str
    severity: Severity
    message: str
    target: str = ""
    location: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def render(self) -> str:
        """One text line (plus an indented hint line when present)."""
        where = f" [{self.target}]" if self.target else ""
        loc = f" {self.location}:" if self.location else ""
        line = f"{self.code} {self.severity.value:<5}{where}{loc} {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> Dict[str, str]:
        """JSON-serializable form."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "target": self.target,
            "location": self.location,
            "hint": self.hint,
        }


class CheckReport:
    """Accumulated findings of one or more check runs."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics or ())

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, other: "CheckReport") -> "CheckReport":
        """Fold another report's findings into this one."""
        self.diagnostics.extend(other.diagnostics)
        return self

    def _with_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings (integrity violations)."""
        return self._with_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warn-severity findings."""
        return self._with_severity(Severity.WARN)

    @property
    def infos(self) -> List[Diagnostic]:
        """Info-severity findings (lints, advisories)."""
        return self._with_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def summary(self) -> str:
        """The one-line tally."""
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )

    def render(self) -> str:
        """The full text report: one line per finding plus the tally."""
        lines = [d.render() for d in self.diagnostics]
        lines.append(f"spike lint: {self.summary()}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> Dict:
        """JSON document: findings plus severity tallies."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "codes": self.codes(),
        }


@dataclass
class CheckContext:
    """Everything an analysis pass may look at.

    Passes take what they need and ignore the rest; a pass requiring a
    field that is ``None`` returns no findings (the caller decides which
    passes make sense for the artifacts at hand).
    """

    binary: object = None
    profile: object = None
    layout: object = None
    address_map: object = None
    #: Label findings are attributed to ("app/all", "profile:kernel").
    target: str = ""
    #: Scratch space for intermediates shared between passes run over
    #: the same context (e.g. the flattened block placement).
    cache: dict = field(default_factory=dict)


#: An analysis pass: context in, findings out.
CheckPass = Callable[[CheckContext], Iterable[Diagnostic]]


class CheckRunner:
    """Composes analysis passes and folds their findings.

    Passes run in registration order inside ``check.pass`` tracing
    spans; per-severity counts land on the ``check.diagnostics.*``
    observability counters.
    """

    def __init__(self, passes: Optional[Iterable[Tuple[str, CheckPass]]] = None) -> None:
        self.passes: List[Tuple[str, CheckPass]] = list(passes or ())

    def add(self, name: str, check: CheckPass) -> "CheckRunner":
        """Register one pass under a stable name; returns self."""
        self.passes.append((name, check))
        return self

    def run(self, ctx: CheckContext) -> CheckReport:
        """Run every registered pass over one context."""
        report = CheckReport()
        obs.counter("check.runs").inc()
        for name, check in self.passes:
            with obs.span("check.pass", check=name, target=ctx.target):
                for diagnostic in check(ctx):
                    report.add(diagnostic)
        for severity in Severity:
            count = len(report._with_severity(severity))
            if count:
                obs.counter(f"check.diagnostics.{severity.value}").inc(count)
        return report
