"""repro.check -- "Spike lint": static verification of layout artifacts.

A binary rewriter is only trustworthy if its output provably preserves
the program (the guarantee BOLT and Codestitcher build their rewriting
machinery around).  This package provides that assurance layer for the
reproduction: a diagnostics engine with stable codes
(:mod:`~repro.check.diagnostics`), layout-integrity checks
(:mod:`~repro.check.layout_checks`), profile flow-conservation checks
(:mod:`~repro.check.profile_checks`), layout-quality lints
(:mod:`~repro.check.quality_checks`), static-vs-measured differential
lints (:mod:`~repro.check.static_checks`), deprecated-API scanning
(:mod:`~repro.check.deprecations`), and the cheap post-pass assertions
used inside the layout pipeline (:mod:`~repro.check.structural`).

See ``docs/CHECKS.md`` for the full diagnostic catalogue and
``repro lint --help`` for the CLI front end.
"""

from repro.check.api import (
    check_all,
    check_layout,
    check_profile,
    check_quality,
    check_static_diff,
    verify_layout,
)
from repro.check.deprecations import (
    DEPRECATED_SIMULATORS,
    scan_deprecated_calls,
)
from repro.check.diagnostics import (
    CODES,
    CheckContext,
    CheckReport,
    CheckRunner,
    Diagnostic,
    Severity,
)
from repro.check.profile_checks import check_flow_graph
from repro.check.structural import (
    verify_chaining,
    verify_split_units,
    verify_unit_permutation,
)

__all__ = [
    "CODES",
    "CheckContext",
    "CheckReport",
    "CheckRunner",
    "DEPRECATED_SIMULATORS",
    "Diagnostic",
    "Severity",
    "check_all",
    "check_flow_graph",
    "check_layout",
    "check_profile",
    "check_quality",
    "check_static_diff",
    "scan_deprecated_calls",
    "verify_chaining",
    "verify_layout",
    "verify_split_units",
    "verify_unit_permutation",
]
