"""Post-pass structural assertions for the layout pipeline.

Each layout pass has a simple algebraic contract: chaining *permutes* a
procedure's blocks, splitting *partitions* a chaining into legal
segments, ordering *permutes* the unit set.  These verifiers check
exactly that contract and raise :class:`~repro.errors.LayoutError`
immediately at the offending pass -- far cheaper to debug than the same
corruption surfacing as a wrong cache figure three passes later.  They
are opt-in (``SpikeOptimizer(verify=True)``, or per-pass ``verify=``
flags) because the contracts hold by construction in committed code.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.errors import LayoutError
from repro.ir import SEGMENT_ENDING, Binary, CodeUnit
from repro.ir.procedure import Procedure


def _report_multiset_diff(kind: str, expected: Counter, got: Counter) -> str:
    missing = sorted((expected - got).elements())
    extra = sorted((got - expected).elements())
    parts = []
    if missing:
        parts.append(f"missing {kind}: {missing[:8]}")
    if extra:
        parts.append(f"unexpected {kind}: {extra[:8]}")
    return "; ".join(parts)


def verify_chaining(proc: Procedure, result) -> None:
    """Chaining contract: the chains are a permutation of the
    procedure's blocks and the entry block leads the first chain."""
    expected = Counter(b.bid for b in proc.blocks)
    got = Counter(result.block_order)
    if expected != got:
        raise LayoutError(
            f"chaining of {proc.name!r} is not a permutation of its blocks: "
            f"{_report_multiset_diff('block ids', expected, got)}"
        )
    if not result.chains or proc.entry.bid not in result.chains[0]:
        raise LayoutError(
            f"chaining of {proc.name!r}: entry block {proc.entry.bid} is not "
            f"in the first chain"
        )


def verify_split_units(binary: Binary, proc_name: str, units: Sequence[CodeUnit]) -> None:
    """Splitting contract: the segments partition the procedure's
    blocks, no segment continues past an unconditional transfer, and
    exactly one segment (containing the entry block) is the entry unit."""
    proc = binary.proc(proc_name)
    expected = Counter(b.bid for b in proc.blocks)
    got = Counter(bid for unit in units for bid in unit.block_ids)
    if expected != got:
        raise LayoutError(
            f"splitting of {proc_name!r} is not a partition of its blocks: "
            f"{_report_multiset_diff('block ids', expected, got)}"
        )
    entry_units = []
    for unit in units:
        for bid in unit.block_ids[:-1]:
            if binary.block(bid).terminator in SEGMENT_ENDING:
                raise LayoutError(
                    f"segment {unit.name} continues past unconditional "
                    f"transfer at block {bid}"
                )
        if unit.is_entry:
            entry_units.append(unit)
    if len(entry_units) != 1 or proc.entry.bid not in entry_units[0].block_ids:
        raise LayoutError(
            f"splitting of {proc_name!r}: expected exactly one entry segment "
            f"containing block {proc.entry.bid}, got "
            f"{[u.name for u in entry_units]}"
        )


def verify_unit_permutation(
    before: Sequence[CodeUnit], after: Sequence[CodeUnit]
) -> None:
    """Ordering contract: the pass reorders units, never invents,
    drops, duplicates, or rewrites one."""
    expected = Counter(u.name for u in before)
    got = Counter(u.name for u in after)
    if expected != got:
        raise LayoutError(
            "ordering did not return a permutation of its input units: "
            f"{_report_multiset_diff('units', expected, got)}"
        )
    originals = {u.name: u for u in before}
    for unit in after:
        if unit.block_ids != originals[unit.name].block_ids:
            raise LayoutError(
                f"ordering rewrote the contents of unit {unit.name}"
            )
