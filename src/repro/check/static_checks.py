"""Static-vs-measured differential analyses (the ``STA*`` family).

:mod:`repro.staticpred` predicts a profile from CFG structure alone;
these passes diff that prediction against a *measured* profile of the
same binary and report where the prediction diverges in ways that
would hurt a layout built from it: hot working sets that barely
overlap (STA001), hot branches predicted in the wrong direction
(STA002), loop-frequency rankings turned upside down (STA003), and
flow the predictor missed entirely -- on hot blocks (STA004) or
anywhere measurement sampled (STA005).

All five are advisories (warn/info): static prediction is expected to
be imperfect, and the lint exists to *quantify* the divergence, not to
fail builds over it.  The thresholds are calibrated so a self-diff
(the measured profile against itself) yields exactly zero findings --
a property the test suite pins.

The measured profile rides in ``ctx.profile``; the static one in
``ctx.cache["static_profile"]`` (see
:func:`repro.check.api.check_static_diff`).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Set, Tuple

from repro.check.diagnostics import CheckContext, Diagnostic, Severity
from repro.ir.instruction import Terminator

#: Fraction of total block weight the "hot set" covers: the smallest
#: prefix of blocks (heaviest first) whose counts reach this share.
HOT_COVERAGE = 0.90

#: STA001 fires when the Jaccard overlap of the two hot sets drops
#: below this.  Static prediction on the generated OLTP/DSS binaries
#: lands well above it; a shuffled or inverted prediction far below.
JACCARD_WARN = 0.25

#: STA002 only trusts a measured branch direction this decisive
#: (majority >= margin * minority); closer splits are noise.
DECISIVE_MARGIN = 1.5

#: STA003 calls a loop-pair ranking *inverted* only when both profiles
#: separate the pair by at least this factor, in opposite directions.
RANK_MARGIN = 2.0

#: STA003 compares only the measured-hottest loop headers pairwise.
TOP_HEADERS = 16

#: Findings emitted before a pass folds the rest into one summary line.
MAX_FINDINGS = 16


def _static_profile(ctx: CheckContext):
    return ctx.cache.get("static_profile")


def _hot_set(profile) -> Set[int]:
    """The smallest heaviest-first block set covering
    :data:`HOT_COVERAGE` of the profile's total block weight."""
    pairs: List[Tuple[int, int]] = sorted(
        ((int(count), bid)
         for bid, count in enumerate(profile.block_counts) if count > 0),
        reverse=True,
    )
    total = sum(count for count, _ in pairs)
    hot: Set[int] = set()
    accumulated = 0
    for count, bid in pairs:
        if accumulated >= HOT_COVERAGE * total:
            break
        hot.add(bid)
        accumulated += count
    return hot


def check_hot_set_divergence(ctx: CheckContext) -> Iterator[Diagnostic]:
    """STA001: the static and measured hot sets barely overlap."""
    binary, measured = ctx.binary, ctx.profile
    static = _static_profile(ctx)
    if binary is None or measured is None or static is None:
        return
    m_hot, s_hot = _hot_set(measured), _hot_set(static)
    union = m_hot | s_hot
    if not union:
        return
    jaccard = len(m_hot & s_hot) / len(union)
    if jaccard < JACCARD_WARN:
        yield Diagnostic(
            "STA001", Severity.WARN,
            f"hot sets diverge: {len(m_hot)} measured-hot vs "
            f"{len(s_hot)} static-hot blocks overlap on "
            f"{len(m_hot & s_hot)} (Jaccard {jaccard:.2f} < "
            f"{JACCARD_WARN})",
            target=ctx.target,
            hint="the static prediction concentrates flow in the wrong "
                 "code; a layout built from it will scatter the real "
                 "working set",
        )


def check_branch_directions(ctx: CheckContext) -> Iterator[Diagnostic]:
    """STA002: static prediction sends a decisively-measured hot
    branch the wrong way."""
    binary, measured = ctx.binary, ctx.profile
    static = _static_profile(ctx)
    if binary is None or measured is None or static is None:
        return
    hot = _hot_set(measured)
    emitted = 0
    for block in binary.blocks():
        if (block.bid not in hot
                or block.terminator is not Terminator.COND_BRANCH):
            continue
        taken, fallthrough = block.succs
        if taken == fallthrough:
            continue
        m_t = measured.edge_counts.get((block.bid, taken), 0)
        m_f = measured.edge_counts.get((block.bid, fallthrough), 0)
        s_t = static.edge_counts.get((block.bid, taken), 0)
        s_f = static.edge_counts.get((block.bid, fallthrough), 0)
        if m_t + m_f == 0 or s_t + s_f == 0:
            continue
        m_major, m_minor = max(m_t, m_f), min(m_t, m_f)
        if m_major < DECISIVE_MARGIN * max(1, m_minor):
            continue  # measured direction too close to call
        measured_arm = taken if m_t > m_f else fallthrough
        other_arm = fallthrough if m_t > m_f else taken
        s_measured_arm = s_t if measured_arm == taken else s_f
        s_other_arm = s_f if measured_arm == taken else s_t
        if s_measured_arm >= s_other_arm:
            continue  # static agrees (or is undecided)
        emitted += 1
        if emitted > MAX_FINDINGS:
            continue
        yield Diagnostic(
            "STA002", Severity.WARN,
            f"hot branch {block.proc_name}.{block.label} (id {block.bid}) "
            f"measured {m_major}:{m_minor} toward block {measured_arm}, "
            f"but static prediction favors block {other_arm} "
            f"({s_other_arm}:{s_measured_arm})",
            target=ctx.target, location=f"block {block.bid}",
            hint="a heuristic misfires on this branch shape; the static "
                 "layout will straighten the cold arm",
        )
    if emitted > MAX_FINDINGS:
        yield Diagnostic(
            "STA002", Severity.WARN,
            f"...and {emitted - MAX_FINDINGS} further mispredicted hot "
            "branches",
            target=ctx.target,
        )


def _loop_headers(binary) -> List[int]:
    """Every natural-loop header bid in the binary, via the same loop
    analysis the predictor itself uses."""
    from repro.staticpred.cfg import CfgInfo

    headers: List[int] = []
    for name in binary.proc_order():
        info = CfgInfo(binary.proc(name))
        headers.extend(loop.header for loop in info.loops)
    return headers


def check_loop_rank_inversions(ctx: CheckContext) -> Iterator[Diagnostic]:
    """STA003: two loops whose frequency ordering flips between the
    profiles, decisively (>= :data:`RANK_MARGIN` both ways)."""
    binary, measured = ctx.binary, ctx.profile
    static = _static_profile(ctx)
    if binary is None or measured is None or static is None:
        return
    headers = [h for h in _loop_headers(binary) if measured.count(h) > 0]
    headers.sort(key=lambda bid: (-measured.count(bid), bid))
    top = headers[:TOP_HEADERS]
    emitted = 0
    for i, hot_bid in enumerate(top):
        for cool_bid in top[i + 1:]:
            m_hot, m_cool = measured.count(hot_bid), measured.count(cool_bid)
            s_hot, s_cool = static.count(hot_bid), static.count(cool_bid)
            if (m_hot >= RANK_MARGIN * m_cool
                    and s_cool >= RANK_MARGIN * max(1, s_hot)):
                emitted += 1
                if emitted > MAX_FINDINGS:
                    continue
                hot_block = binary.block(hot_bid)
                cool_block = binary.block(cool_bid)
                yield Diagnostic(
                    "STA003", Severity.WARN,
                    f"loop ranking inverted: header "
                    f"{hot_block.proc_name}.{hot_block.label} measured "
                    f"{m_hot}x vs {cool_block.proc_name}."
                    f"{cool_block.label} {m_cool}x, but static predicts "
                    f"{s_hot}x vs {s_cool}x",
                    target=ctx.target, location=f"block {hot_bid}",
                    hint="trip-count heuristics rank these loops "
                         "backwards; the hotter loop body will be "
                         "placed colder",
                )
    if emitted > MAX_FINDINGS:
        yield Diagnostic(
            "STA003", Severity.WARN,
            f"...and {emitted - MAX_FINDINGS} further loop-rank "
            "inversions",
            target=ctx.target,
        )


def check_static_cold_hot(ctx: CheckContext) -> Iterator[Diagnostic]:
    """STA004: measured-hot blocks the static profile left at zero,
    aggregated per procedure."""
    binary, measured = ctx.binary, ctx.profile
    static = _static_profile(ctx)
    if binary is None or measured is None or static is None:
        return
    hot = _hot_set(measured)
    misses: Dict[str, int] = defaultdict(int)
    weight: Dict[str, int] = defaultdict(int)
    for bid in hot:
        if static.count(bid) == 0:
            block = binary.block(bid)
            misses[block.proc_name] += 1
            weight[block.proc_name] += measured.count(bid)
    for name in sorted(misses):
        yield Diagnostic(
            "STA004", Severity.WARN,
            f"{misses[name]} measured-hot block(s) of {name!r} "
            f"({weight[name]} executions) carry zero static flow",
            target=ctx.target, location=f"procedure {name}",
            hint="the predictor never routes flow here (dead root "
                 "demotion or a mispredicted call chain); this hot "
                 "code lands in the static layout's cold tail",
        )


def check_unreached_sampled(ctx: CheckContext) -> Iterator[Diagnostic]:
    """STA005: blocks measurement sampled (outside the hot set --
    those are STA004) that static flow never reaches, per procedure."""
    binary, measured = ctx.binary, ctx.profile
    static = _static_profile(ctx)
    if binary is None or measured is None or static is None:
        return
    hot = _hot_set(measured)
    misses: Dict[str, int] = defaultdict(int)
    for block in binary.blocks():
        if (block.bid not in hot and measured.count(block.bid) > 0
                and static.count(block.bid) == 0):
            misses[block.proc_name] += 1
    for name in sorted(misses):
        yield Diagnostic(
            "STA005", Severity.INFO,
            f"{misses[name]} sampled block(s) of {name!r} are "
            "statically unreached (zero predicted flow)",
            target=ctx.target, location=f"procedure {name}",
        )
