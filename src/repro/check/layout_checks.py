"""Layout integrity analyses (the ``LAY*`` family).

A :class:`~repro.ir.Layout` claims to place every basic block of a
:class:`~repro.ir.Binary` exactly once; an :class:`~repro.ir.AddressMap`
claims the resulting placement preserves program semantics through the
branch fixups of :func:`~repro.ir.assign_addresses`.  These passes
verify both claims statically -- the guarantee a binary rewriter lives
or dies on (BOLT and Codestitcher devote comparable machinery to safe
rewriting).

Structure passes (:func:`check_structure`, :func:`check_branch_targets`,
:func:`check_segments`) need only the binary and the layout.  Address
passes (:func:`check_addresses`, :func:`check_fixups`) additionally need
the address map and assume the structure passes came back clean --
:func:`repro.check.api.check_layout` sequences them accordingly.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterator, List

import numpy as np

from repro.check.diagnostics import CheckContext, Diagnostic, Severity
from repro.ir.instruction import INSTRUCTION_BYTES, SEGMENT_ENDING, Terminator

#: Combos whose units are fine-grain segments; only these are held to
#: the segment-integrity rule (hot/cold halves legitimately contain
#: interior returns).
SPLIT_BASED_LAYOUTS = ("split", "chain+split", "all", "cfa")

#: Per-binary lookup tables (binaries are sealed and immutable, so
#: rebuilding them for every checked layout would dominate the cost of
#: verifying a whole combo sweep).
_BLOCK_TABLES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _block_tables(binary) -> dict:
    tables = _BLOCK_TABLES.get(binary)
    if tables is not None and tables["num_blocks"] == binary.num_blocks:
        return tables
    n = binary.num_blocks
    proc_of: List[str] = [""] * n
    fc_src: List[int] = []
    fc_dst: List[int] = []
    cond_src: List[int] = []
    cond_taken: List[int] = []
    cond_fall: List[int] = []
    uncond_src: List[int] = []
    uncond_dst: List[int] = []
    seg_end = np.zeros(n, dtype=bool)
    for block in binary.blocks():
        bid = block.bid
        proc_of[bid] = block.proc_name
        term = block.terminator
        if term in (Terminator.FALLTHROUGH, Terminator.CALL):
            fc_src.append(bid)
            fc_dst.append(block.succs[0])
        elif term is Terminator.COND_BRANCH:
            cond_src.append(bid)
            cond_taken.append(block.succs[0])
            cond_fall.append(block.succs[1])
        elif term is Terminator.UNCOND_BRANCH:
            uncond_src.append(bid)
            uncond_dst.append(block.succs[0])
        if term in SEGMENT_ENDING:
            seg_end[bid] = True
    tables = {
        "num_blocks": n,
        "proc_of": proc_of,
        "fc_src": np.asarray(fc_src, dtype=np.int64),
        "fc_dst": np.asarray(fc_dst, dtype=np.int64),
        "cond_src": np.asarray(cond_src, dtype=np.int64),
        "cond_taken": np.asarray(cond_taken, dtype=np.int64),
        "cond_fall": np.asarray(cond_fall, dtype=np.int64),
        "uncond_src": np.asarray(uncond_src, dtype=np.int64),
        "uncond_dst": np.asarray(uncond_dst, dtype=np.int64),
        "seg_end": seg_end,
    }
    _BLOCK_TABLES[binary] = tables
    return tables


def _placement_arrays(ctx: CheckContext):
    """``(flat_ids, in_range, per_id_counts)`` for the context's layout,
    cached so the structure/address passes flatten the layout once."""
    cached = ctx.cache.get("placement")
    if cached is not None:
        return cached
    n = ctx.binary.num_blocks
    ids = np.fromiter(
        (bid for unit in ctx.layout.units for bid in unit.block_ids),
        dtype=np.int64,
    )
    in_range = (ids >= 0) & (ids < n)
    counts = np.bincount(ids[in_range], minlength=n)
    cached = (ids, in_range, counts)
    ctx.cache["placement"] = cached
    return cached


def check_structure(ctx: CheckContext) -> Iterator[Diagnostic]:
    """LAY001/LAY002/LAY003/LAY004: the layout is a well-formed
    placement of exactly the binary's blocks."""
    binary, layout = ctx.binary, ctx.layout
    if binary is None or layout is None:
        return
    ids, in_range, counts = _placement_arrays(ctx)

    for bid in np.unique(ids[~in_range]).tolist():
        yield Diagnostic(
            "LAY003", Severity.ERROR,
            f"block id {bid} does not exist in binary {binary.name!r} "
            f"({binary.num_blocks} blocks)",
            target=ctx.target,
            hint="the layout was built for a different binary, or a unit was hand-edited",
        )
    for bid in np.nonzero(counts > 1)[0].tolist():
        block = binary.block(bid)
        yield Diagnostic(
            "LAY002", Severity.ERROR,
            f"block {block.proc_name}.{block.label} (id {bid}) placed "
            f"{int(counts[bid])} times",
            target=ctx.target,
            hint="every block must appear exactly once across the layout's units",
        )

    missing = np.nonzero(counts == 0)[0].tolist()
    for bid in missing[:16]:
        block = binary.block(bid)
        yield Diagnostic(
            "LAY001", Severity.ERROR,
            f"block {block.proc_name}.{block.label} (id {bid}) is not placed",
            target=ctx.target,
            hint="a dropped block makes its code unreachable in the rewritten image",
        )
    if len(missing) > 16:
        yield Diagnostic(
            "LAY001", Severity.ERROR,
            f"...and {len(missing) - 16} further unplaced blocks",
            target=ctx.target,
        )

    # Per-unit ownership: every block of a unit must belong to the
    # procedure the unit claims (LAY003), and each procedure needs
    # exactly one entry unit actually containing its entry block
    # (LAY004) so calls land on real code.
    proc_of = _block_tables(binary)["proc_of"]
    num_blocks = binary.num_blocks
    entry_units: Dict[str, List[str]] = {}
    for unit in layout.units:
        owner = unit.proc_name
        for bid in unit.block_ids:
            if 0 <= bid < num_blocks and proc_of[bid] != owner:
                yield Diagnostic(
                    "LAY003", Severity.ERROR,
                    f"unit {unit.name} of {unit.proc_name!r} contains foreign "
                    f"block {bid} owned by {proc_of[bid]!r}",
                    target=ctx.target, location=f"unit {unit.name}",
                )
        if unit.is_entry:
            entry_units.setdefault(unit.proc_name, []).append(unit.name)
            entry_bid = (
                binary.entry_bid(unit.proc_name)
                if unit.proc_name in binary.procedures else None
            )
            if entry_bid is not None and entry_bid not in unit.block_ids:
                yield Diagnostic(
                    "LAY004", Severity.ERROR,
                    f"unit {unit.name} is flagged is_entry but does not contain "
                    f"{unit.proc_name}'s entry block (id {entry_bid})",
                    target=ctx.target, location=f"unit {unit.name}",
                )
    for name in binary.proc_order():
        units = entry_units.get(name, [])
        if not units:
            yield Diagnostic(
                "LAY004", Severity.ERROR,
                f"procedure {name!r} has no entry unit",
                target=ctx.target,
                hint="callers of this procedure would land on arbitrary code",
            )
        elif len(units) > 1:
            yield Diagnostic(
                "LAY004", Severity.ERROR,
                f"procedure {name!r} has {len(units)} entry units: "
                f"{', '.join(units)}",
                target=ctx.target,
            )


def check_branch_targets(ctx: CheckContext) -> Iterator[Diagnostic]:
    """LAY007: every successor of a placed block is itself placed."""
    binary, layout = ctx.binary, ctx.layout
    if binary is None or layout is None:
        return
    ids, in_range, counts = _placement_arrays(ctx)
    if in_range.all() and counts.all():
        # Complete placement: every successor id is a valid block
        # (guaranteed at seal time), hence placed.  Nothing can dangle.
        return
    placed = set(ids[in_range].tolist())
    emitted = 0
    for unit in layout.units:
        for bid in unit.block_ids:
            if not (0 <= bid < binary.num_blocks):
                continue  # LAY003 territory
            block = binary.block(bid)
            for dst in block.succs:
                if dst not in placed:
                    emitted += 1
                    if emitted > 16:
                        yield Diagnostic(
                            "LAY007", Severity.ERROR,
                            "...further dangling branch targets suppressed",
                            target=ctx.target,
                        )
                        return
                    yield Diagnostic(
                        "LAY007", Severity.ERROR,
                        f"block {block.proc_name}.{block.label} (id {bid}) "
                        f"targets block {dst}, which the layout never places",
                        target=ctx.target, location=f"unit {unit.name}",
                        hint="a branch to unplaced code cannot be encoded",
                    )


def check_segments(ctx: CheckContext) -> Iterator[Diagnostic]:
    """LAY009: in a fine-grain split layout, a code segment must end --
    and only end -- at an unconditional control transfer.

    "A code segment is ended by an unconditional branch or return"
    (paper §2): an interior unconditional transfer means two segments
    were fused, which silently re-couples hot and cold code and defeats
    the ordering pass's freedom to separate them.
    """
    binary, layout = ctx.binary, ctx.layout
    if binary is None or layout is None:
        return
    if getattr(layout, "name", "") not in SPLIT_BASED_LAYOUTS:
        return
    seg_end = _block_tables(binary)["seg_end"]
    num_blocks = binary.num_blocks
    for unit in layout.units:
        for bid in unit.block_ids[:-1]:
            if not (0 <= bid < num_blocks) or not seg_end[bid]:
                continue
            block = binary.block(bid)
            yield Diagnostic(
                "LAY009", Severity.ERROR,
                f"segment {unit.name} continues past "
                f"{block.proc_name}.{block.label} (id {bid}), a "
                f"{block.terminator.value} terminator",
                target=ctx.target, location=f"unit {unit.name}",
                hint="cut the segment after the unconditional transfer",
            )


def check_addresses(ctx: CheckContext) -> Iterator[Diagnostic]:
    """LAY005/LAY006: placed blocks occupy disjoint byte ranges and
    units start aligned, in order, without negative gaps."""
    binary, layout, amap = ctx.binary, ctx.layout, ctx.address_map
    if binary is None or layout is None or amap is None:
        return
    ids, in_range, _counts = _placement_arrays(ctx)
    block_end = amap.addr + amap.n_fetch.astype(np.int64) * INSTRUCTION_BYTES

    occupied = ids[in_range]
    occupied = occupied[amap.n_fetch[occupied] > 0]
    starts = amap.addr[occupied]
    order = np.argsort(starts, kind="stable")
    occupied = occupied[order]
    starts = starts[order]
    ends = block_end[occupied]
    for i in np.nonzero(ends[:-1] > starts[1:])[0].tolist():
        b1, b2 = int(occupied[i]), int(occupied[i + 1])
        blk1, blk2 = binary.block(b1), binary.block(b2)
        yield Diagnostic(
            "LAY005", Severity.ERROR,
            f"blocks {blk1.proc_name}.{blk1.label} (id {b1}, ends "
            f"{int(ends[i]):#x}) and {blk2.proc_name}.{blk2.label} "
            f"(id {b2}, starts {int(starts[i + 1]):#x}) overlap",
            target=ctx.target,
            hint="two code regions sharing bytes cannot both be correct",
        )

    align = max(layout.alignment, INSTRUCTION_BYTES)
    prev_end = 0
    for unit in layout.units:
        start = amap.unit_starts.get(unit.name)
        if start is None:
            continue  # structure errors already reported
        if start % align:
            yield Diagnostic(
                "LAY006", Severity.ERROR,
                f"unit {unit.name} starts at {start:#x}, not {align}-byte aligned",
                target=ctx.target, location=f"unit {unit.name}",
            )
        if start < prev_end:
            yield Diagnostic(
                "LAY006", Severity.ERROR,
                f"unit {unit.name} starts at {start:#x}, before the previous "
                f"unit ends ({prev_end:#x})",
                target=ctx.target, location=f"unit {unit.name}",
            )
        end = start
        for bid in unit.block_ids:
            if 0 <= bid < binary.num_blocks:
                end = max(end, int(block_end[bid]))
        prev_end = max(prev_end, end)


def check_fixups(ctx: CheckContext) -> Iterator[Diagnostic]:
    """LAY008: control that *falls through* really lands on the right
    block.

    For every placed block the address assigner must have either made
    the continuation sequential or recorded a fixup branch; a block
    violating both would execute into whatever code happens to follow
    it -- the one corruption no cache figure would ever reveal.
    """
    binary, amap = ctx.binary, ctx.address_map
    if binary is None or amap is None:
        return
    tables = _block_tables(binary)
    n = binary.num_blocks
    addr = amap.addr
    block_end = addr + amap.n_fetch.astype(np.int64) * INSTRUCTION_BYTES
    appended = np.zeros(n, dtype=bool)
    if amap.appended_branches:
        appended[list(amap.appended_branches)] = True
    inverted = np.zeros(n, dtype=bool)
    if amap.inverted:
        inverted[list(amap.inverted)] = True
    deleted = np.zeros(n, dtype=bool)
    if amap.deleted_branches:
        deleted[list(amap.deleted_branches)] = True

    src, dst = tables["fc_src"], tables["fc_dst"]
    bad = ~appended[src] & (addr[dst] != block_end[src])
    for bid, target in zip(src[bad].tolist(), dst[bad].tolist()):
        block = binary.block(bid)
        yield Diagnostic(
            "LAY008", Severity.ERROR,
            f"{block.terminator.value} block {block.proc_name}.{block.label} "
            f"(id {bid}) continues at {int(block_end[bid]):#x} but its "
            f"successor {target} sits at {int(addr[target]):#x} with no "
            f"fixup branch",
            target=ctx.target,
            hint="assign_addresses must append an unconditional branch here",
        )

    src = tables["cond_src"]
    if len(src):
        expected = np.where(
            inverted[src], tables["cond_taken"], tables["cond_fall"]
        )
        bad = ~appended[src] & (addr[expected] != block_end[src])
        for bid, exp in zip(src[bad].tolist(), expected[bad].tolist()):
            block = binary.block(bid)
            kind = "inverted taken" if bid in amap.inverted else "fall-through"
            yield Diagnostic(
                "LAY008", Severity.ERROR,
                f"conditional block {block.proc_name}.{block.label} "
                f"(id {bid}): {kind} successor {exp} is not adjacent "
                f"and no fixup branch was appended",
                target=ctx.target,
            )

    src, dst = tables["uncond_src"], tables["uncond_dst"]
    bad = deleted[src] & (addr[dst] != block_end[src])
    for bid, target in zip(src[bad].tolist(), dst[bad].tolist()):
        block = binary.block(bid)
        yield Diagnostic(
            "LAY008", Severity.ERROR,
            f"block {block.proc_name}.{block.label} (id {bid}) had its "
            f"unconditional branch deleted but target {target} "
            f"is not adjacent",
            target=ctx.target,
            hint="a deleted branch is only legal when the target follows directly",
        )
