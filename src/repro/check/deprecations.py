"""Deprecated-API call-site scanning (the ``DEP*`` family).

The runtime deprecation shims in :mod:`repro.harness.experiment` warn
once per process, which keeps sweeps quiet but also means stale callers
hide until someone happens to trip the first warning.  This scanner
finds every call site *statically* -- an AST walk over the repository's
Python sources -- and reports each one as a ``DEP001`` info diagnostic,
so ``repro lint`` shows the full migration backlog at once.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List

from repro.check.diagnostics import Diagnostic, Severity

#: Deprecated attribute/method names -> the replacement to suggest.
#: Kept in sync with the runtime ``Experiment._deprecated`` shims (a
#: test cross-references the two).
DEPRECATED_APIS: Dict[str, str] = {
    "app_streams": 'streams(combo, scope="app")',
    "kernel_streams": 'streams(scope="kernel", kernel_combo=...)',
    "combined_streams": 'streams(combo, scope="combined")',
    "per_process_streams": 'streams(combo, scope="per-process")',
}


def _scan_source(text: str, path: str) -> Iterator[Diagnostic]:
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        yield Diagnostic(
            "DEP001", Severity.INFO,
            f"could not parse {path}: {exc.msg}",
            target=path,
        )
        return
    for node in ast.walk(tree):
        # Deprecated APIs are methods, so every interesting site is an
        # attribute access (bare-name definitions inside experiment.py
        # itself are the shims, not callers).
        if isinstance(node, ast.Attribute) and node.attr in DEPRECATED_APIS:
            yield Diagnostic(
                "DEP001", Severity.INFO,
                f"call site uses deprecated API {node.attr!r}",
                target=path, location=f"line {node.lineno}",
                hint=f"use {DEPRECATED_APIS[node.attr]} instead",
            )


def scan_deprecated_calls(
    roots: Iterable[str], skip_definitions: bool = True
) -> List[Diagnostic]:
    """Scan Python files under ``roots`` for deprecated call sites.

    Args:
        roots: Files or directories to walk (``.py`` files only).
        skip_definitions: Leave out the module that *defines* the shims
            (``harness/experiment.py``) so the report lists only real
            callers.
    """
    diagnostics: List[Diagnostic] = []
    for root in roots:
        base = Path(root)
        files = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in files:
            if skip_definitions and path.name == "experiment.py" and path.parent.name == "harness":
                continue
            try:
                text = path.read_text()
            except OSError:
                continue
            diagnostics.extend(_scan_source(text, str(path)))
    return diagnostics
