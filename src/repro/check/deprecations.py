"""Deprecated-API call-site scanning (the ``DEP*`` family).

Runtime shims only speak up when something actually calls them -- the
``repro.cache.simulate_*`` wrappers warn once per process.  This
scanner finds every call site *statically* -- an AST walk over the
repository's Python sources -- so ``repro lint`` shows the full
migration backlog at once:

* ``DEP000`` (info): a scanned file could not be parsed, so its call
  sites are unknown.
* ``DEP002`` (error): a call site uses one of the **deprecated**
  per-level simulators instead of the :func:`repro.sim.simulate`
  facade.  It still works at runtime (one ``DeprecationWarning`` per
  process), but the deprecation ladder is complete -- first-party code
  has been clean for two releases -- so the lint now gates on it: the
  next step removes the wrappers entirely.

The ``DEP001`` row (the removed ``Experiment.*_streams`` accessors)
completed the full ladder -- warn, ``RemovedAPIError``, deletion -- and
was retired with the shims themselves: the attributes no longer exist,
so a surviving caller fails loudly with ``AttributeError`` at runtime
and needs no static scan.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List

from repro.check.diagnostics import Diagnostic, Severity

#: Deprecated simulator entry points -> the facade replacement.
#: Kept in sync with the warn-once wrappers in ``repro.cache``.
DEPRECATED_SIMULATORS: Dict[str, str] = {
    "simulate_direct_mapped": "repro.sim.simulate() or "
    "repro.sim.classic.direct_mapped_misses()",
    "simulate_lru": "repro.sim.simulate(streams, "
    "MemoryHierarchy.l1i_only(geometry))",
    "simulate_l2": "repro.sim.simulate() with hierarchy.l2 set",
    "simulate_itlb": "repro.sim.simulate() with hierarchy.itlb_entries set",
    "simulate_dcache": "repro.sim.simulate() with hierarchy.dcache set",
    "sweep_direct_mapped": "repro.sim.simulate_grid()",
}


def _scan_source(text: str, path: str) -> Iterator[Diagnostic]:
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        yield Diagnostic(
            "DEP000", Severity.INFO,
            f"could not parse {path}: {exc.msg}",
            target=path,
        )
        return
    for node in ast.walk(tree):
        # The deprecated simulators are module functions: both bare
        # names (``simulate_lru(...)``) and attribute references
        # (``cache.simulate_lru(...)``) are call-site shapes; plain
        # ``from repro.cache import ...`` statements are not flagged.
        name = None
        if isinstance(node, ast.Name) and node.id in DEPRECATED_SIMULATORS:
            name = node.id
        elif isinstance(node, ast.Attribute) and node.attr in DEPRECATED_SIMULATORS:
            name = node.attr
        if name is not None:
            yield Diagnostic(
                "DEP002", Severity.ERROR,
                f"call site uses deprecated simulator {name!r}",
                target=path, location=f"line {node.lineno}",
                hint=f"use {DEPRECATED_SIMULATORS[name]} instead",
            )


def _is_definition_module(path: Path) -> bool:
    """True for the modules that define the shims themselves."""
    if path.parent.name in ("cache", "sim") and path.parent.parent.name == "repro":
        return True  # the deprecated simulator wrappers + new engine
    return False


def scan_deprecated_calls(
    roots: Iterable[str], skip_definitions: bool = True
) -> List[Diagnostic]:
    """Scan Python files under ``roots`` for deprecated call sites.

    Args:
        roots: Files or directories to walk (``.py`` files only).
        skip_definitions: Leave out the modules that *define* the shims
            (``repro/cache/*``, ``repro/sim/*``) so the report lists
            only real callers.
    """
    diagnostics: List[Diagnostic] = []
    for root in roots:
        base = Path(root)
        files = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in files:
            if skip_definitions and _is_definition_module(path):
                continue
            try:
                text = path.read_text()
            except OSError:
                continue
            diagnostics.extend(_scan_source(text, str(path)))
    return diagnostics
